package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/loadgen"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/workload"
)

// benchCluster builds the 8-node regression topology (2 reserved nodes)
// with the scan deployed everywhere and HORSE pools on the reserved
// nodes.
func benchCluster(b *testing.B, policy string) *Cluster {
	b.Helper()
	specs := make([]NodeSpec, 8)
	for i := range specs {
		if i < 2 {
			specs[i].ULLSlots = 2
		}
	}
	c, err := New(Options{Specs: specs, Policy: policy, Seed: 42, Fallback: faas.FallbackConfig{Enabled: true}})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterEverywhere(workload.NewScan(1), faas.SandboxSpec{VCPUs: 1, MemoryMB: 128}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.ScaleCluster("scan", 4, core.Horse); err != nil {
		b.Fatal(err)
	}
	c.Settle()
	return c
}

// BenchmarkRouting measures one placement decision — the cluster-layer
// cost every trigger pays before any sandbox work starts.
func BenchmarkRouting(b *testing.B) {
	for _, policy := range Policies() {
		b.Run(policy, func(b *testing.B) {
			c := benchCluster(b, policy)
			now := c.clock.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.router.Pick(c, "scan", true, nil, now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterTrigger measures the full routed trigger: placement,
// clock sync, HORSE resume, invoke, re-pool.
func BenchmarkClusterTrigger(b *testing.B) {
	c := benchCluster(b, PolicyULLAffinity)
	payload, err := json.Marshal(workload.ScanRequest{Threshold: 5000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Trigger("scan", faas.ModeHorse, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShardedCluster is benchCluster with a shard count, sized so
// every node carries warm HORSE capacity (the serve path the paper's
// throughput claims are about). Round-robin placement spreads the
// single benchmark function evenly — ull-affinity would pin it to one
// ring owner and measure that node, not the cluster.
func benchShardedCluster(b *testing.B, shards int) *Cluster {
	b.Helper()
	specs := make([]NodeSpec, 8)
	for i := range specs {
		specs[i].ULLSlots = 4
	}
	c, err := New(Options{
		Specs:    specs,
		Policy:   PolicyRoundRobin,
		Seed:     42,
		Fallback: faas.FallbackConfig{Enabled: true},
		Shards:   shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterEverywhere(workload.NewScan(1), faas.SandboxSpec{VCPUs: 1, MemoryMB: 128}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.ScaleCluster("scan", 16, core.Horse); err != nil {
		b.Fatal(err)
	}
	c.Settle()
	return c
}

// BenchmarkClusterRun measures the full conservative-PDES run loop at
// scale: one million-plus arrivals over an 8-node cluster, sequential
// versus one shard per node. The benchmark's triggers/sec custom
// metric is the budget BENCH_cluster.json tracks. Per-trigger wall
// cost is dominated by the scan workload's real JSON work inside the
// sandbox (BenchmarkClusterTrigger, ~45 µs), which is exactly the work
// the serve barrier spreads across shards — so on an N-core host the
// sharded run's throughput scales toward min(N, nodes)×, while on a
// single-core host it can only show the barrier overhead (see the
// recorded baseline's host_cpus).
func BenchmarkClusterRun(b *testing.B) {
	// 5 M arrivals per virtual second over a 250 ms horizon ≈ 1.25 M
	// arrivals per run.
	ws, err := loadgen.ParseWorkloads("scan=poisson:rate=5000000/s,mode=horse")
	if err != nil {
		b.Fatal(err)
	}
	payload, err := json.Marshal(workload.ScanRequest{Threshold: 5000})
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := benchShardedCluster(b, shards)
				b.StartTimer()
				report, err := c.Run(RunConfig{
					Workloads: ws,
					Horizon:   250 * simtime.Millisecond,
					Payloads:  map[string][]byte{"scan": payload},
				})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if report.Arrivals < 1_000_000 {
					b.Fatalf("run generated %d arrivals, want 1M+", report.Arrivals)
				}
				b.ReportMetric(float64(report.Arrivals)*float64(b.N)/b.Elapsed().Seconds(), "triggers/s")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkReportBuild measures report assembly plus CSV rendering over
// a populated run.
func BenchmarkReportBuild(b *testing.B) {
	c := benchCluster(b, PolicyULLAffinity)
	ws, err := loadgen.ParseWorkloads("scan=poisson:rate=2000/s,mode=horse")
	if err != nil {
		b.Fatal(err)
	}
	payload, err := json.Marshal(workload.ScanRequest{Threshold: 5000})
	if err != nil {
		b.Fatal(err)
	}
	report, err := c.Run(RunConfig{
		Workloads: ws,
		Horizon:   100 * simtime.Millisecond,
		Payloads:  map[string][]byte{"scan": payload},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := report.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
