package cluster

import (
	"encoding/json"
	"io"
	"testing"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/loadgen"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/workload"
)

// benchCluster builds the 8-node regression topology (2 reserved nodes)
// with the scan deployed everywhere and HORSE pools on the reserved
// nodes.
func benchCluster(b *testing.B, policy string) *Cluster {
	b.Helper()
	specs := make([]NodeSpec, 8)
	for i := range specs {
		if i < 2 {
			specs[i].ULLSlots = 2
		}
	}
	c, err := New(Options{Specs: specs, Policy: policy, Seed: 42, Fallback: faas.FallbackConfig{Enabled: true}})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterEverywhere(workload.NewScan(1), faas.SandboxSpec{VCPUs: 1, MemoryMB: 128}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.ScaleCluster("scan", 4, core.Horse); err != nil {
		b.Fatal(err)
	}
	c.Settle()
	return c
}

// BenchmarkRouting measures one placement decision — the cluster-layer
// cost every trigger pays before any sandbox work starts.
func BenchmarkRouting(b *testing.B) {
	for _, policy := range Policies() {
		b.Run(policy, func(b *testing.B) {
			c := benchCluster(b, policy)
			now := c.clock.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.router.Pick(c, "scan", true, nil, now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterTrigger measures the full routed trigger: placement,
// clock sync, HORSE resume, invoke, re-pool.
func BenchmarkClusterTrigger(b *testing.B) {
	c := benchCluster(b, PolicyULLAffinity)
	payload, err := json.Marshal(workload.ScanRequest{Threshold: 5000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Trigger("scan", faas.ModeHorse, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportBuild measures report assembly plus CSV rendering over
// a populated run.
func BenchmarkReportBuild(b *testing.B) {
	c := benchCluster(b, PolicyULLAffinity)
	ws, err := loadgen.ParseWorkloads("scan=poisson:rate=2000/s,mode=horse")
	if err != nil {
		b.Fatal(err)
	}
	payload, err := json.Marshal(workload.ScanRequest{Threshold: 5000})
	if err != nil {
		b.Fatal(err)
	}
	report, err := c.Run(RunConfig{
		Workloads: ws,
		Horizon:   100 * simtime.Millisecond,
		Payloads:  map[string][]byte{"scan": payload},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := report.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
