package cluster

import (
	"errors"
	"fmt"
	"sort"

	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/tenant"
)

// Routing errors.
var (
	// ErrNoNodes means no healthy node could accept the trigger: every
	// node is draining, failed, or already excluded by failover.
	ErrNoNodes = errors.New("cluster: no eligible nodes")
	// ErrUnknownPolicy reports an unrecognized placement-policy name.
	ErrUnknownPolicy = errors.New("cluster: unknown placement policy")
)

// Placement-policy names accepted by Options.Policy and the horsesim
// cluster -policy flag.
const (
	// PolicyRoundRobin rotates through healthy nodes in index order —
	// the oblivious baseline.
	PolicyRoundRobin = "round-robin"
	// PolicyLeastLoaded picks the healthy node with the smallest
	// virtual-time backlog (Node.Lag), ties broken by index.
	PolicyLeastLoaded = "least-loaded"
	// PolicyULLAffinity pins uLL functions to uLL-reserved nodes with
	// consistent hashing, spilling along the hash ring when the pinned
	// node's backlog exceeds the bounded-load threshold; non-uLL
	// traffic is steered to the unreserved nodes so it cannot queue
	// ahead of uLL triggers.
	PolicyULLAffinity = "ull-affinity"
)

// Policies returns the placement-policy names in stable order.
func Policies() []string {
	return []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyULLAffinity}
}

// placementPolicy picks a node for one routing decision. excluded holds
// node indexes already ruled out by this trigger's failover loop.
// Implementations must be deterministic: same cluster state, same
// arguments, same answer.
type placementPolicy interface {
	name() string
	pick(c *Cluster, fn string, ull bool, excluded map[int]bool, now simtime.Time) (*Node, error)
	// reset returns any cross-trigger policy state (cursors) to its
	// just-built value, so back-to-back Runs on one cluster route
	// exactly like runs on a fresh cluster.
	reset()
}

// Router applies the cluster's placement policy and keeps the per-node
// placement counters. When the cluster has a tenant contract it also
// fronts the admission gate: Admit runs before Pick, so a rejected
// trigger never consumes a routing decision.
type Router struct {
	policy  placementPolicy
	tenants *tenant.Controller //horselint:coordinator
}

func newRouter(policy string, c *Cluster, vnodes int, boundFactor float64, minHeadroom simtime.Duration) (*Router, error) {
	switch policy {
	case PolicyRoundRobin:
		return &Router{policy: &roundRobin{}}, nil
	case PolicyLeastLoaded:
		return &Router{policy: leastLoaded{}}, nil
	case PolicyULLAffinity:
		return &Router{policy: newULLAffinity(c, vnodes, boundFactor, minHeadroom)}, nil
	default:
		return nil, fmt.Errorf("%w: %q (known: round-robin, least-loaded, ull-affinity)", ErrUnknownPolicy, policy)
	}
}

// Policy returns the active placement policy's name.
func (r *Router) Policy() string { return r.policy.name() }

// Admit runs the tenant admission gate for one arrival: the tenant's
// token-bucket rate limit, then — for uLL triggers — its weighted fair
// share of the reserved uLL admission bandwidth. tenantIdx < 0
// (untenanted) and a cluster without a tenant contract always admit.
// Admission is coordinator-only and allocation-free: it runs once per
// arrival, in arrival order, ahead of every routing decision.
//
//horselint:hotpath
//horselint:coordinator
func (r *Router) Admit(tenantIdx int, now simtime.Time, ull bool) tenant.Verdict {
	return r.tenants.Admit(tenantIdx, now, ull)
}

// Pick runs one routing decision and charges the placement to the
// chosen node. Routing mutates cross-node state (the placement charge,
// policy cursors and scratch), so it is coordinator-only: the PDES
// argument (DESIGN.md §13) routes every arrival between barriers.
//
//horselint:hotpath
//horselint:coordinator
func (r *Router) Pick(c *Cluster, fn string, ull bool, excluded map[int]bool, now simtime.Time) (*Node, error) {
	n, err := r.policy.pick(c, fn, ull, excluded, now)
	if err != nil {
		return nil, err
	}
	n.placements++
	return n, nil
}

// eligible reports whether the node can take a new trigger in this
// routing decision.
//
//horselint:hotpath
func eligible(n *Node, excluded map[int]bool) bool {
	return n.health == Up && !excluded[n.index]
}

// roundRobin rotates a cursor over the node list, skipping ineligible
// nodes. The cursor advances past the chosen node so consecutive
// triggers spread out even when every node is healthy.
type roundRobin struct {
	next int //horselint:coordinator
}

func (*roundRobin) name() string { return PolicyRoundRobin }

//horselint:coordinator
func (rr *roundRobin) reset() { rr.next = 0 }

//horselint:hotpath
//horselint:coordinator
func (rr *roundRobin) pick(c *Cluster, fn string, ull bool, excluded map[int]bool, now simtime.Time) (*Node, error) {
	total := len(c.nodes)
	for i := 0; i < total; i++ {
		n := c.nodes[(rr.next+i)%total]
		if eligible(n, excluded) {
			rr.next = (n.index + 1) % total
			return n, nil
		}
	}
	return nil, ErrNoNodes
}

// leastLoaded picks the eligible node with the smallest virtual-time
// backlog; ties (all idle nodes report zero lag) break toward the
// lowest index, which is deterministic but makes the policy pile cold
// traffic onto node00 until it develops lag — exactly the herding the
// paper's bounded-load argument predicts.
type leastLoaded struct{}

func (leastLoaded) name() string { return PolicyLeastLoaded }

func (leastLoaded) reset() {}

//horselint:hotpath
func (leastLoaded) pick(c *Cluster, fn string, ull bool, excluded map[int]bool, now simtime.Time) (*Node, error) {
	return minLag(c.nodes, excluded, now)
}

// minLag returns the eligible node with the smallest lag (ties to the
// lowest index), or ErrNoNodes.
//
//horselint:hotpath
func minLag(nodes []*Node, excluded map[int]bool, now simtime.Time) (*Node, error) {
	var best *Node
	var bestLag simtime.Duration
	for _, n := range nodes {
		if !eligible(n, excluded) {
			continue
		}
		lag := n.Lag(now)
		if best == nil || lag < bestLag {
			best, bestLag = n, lag
		}
	}
	if best == nil {
		return nil, ErrNoNodes
	}
	return best, nil
}

// Bounded-load defaults for the ull-affinity policy.
const (
	// DefaultVirtualNodes is the number of ring points per reserved node.
	DefaultVirtualNodes = 64
	// DefaultBoundFactor caps a pinned node's acceptable backlog at this
	// multiple of the mean backlog across reserved nodes (the classic
	// consistent-hashing-with-bounded-loads c parameter).
	DefaultBoundFactor = 2.0
	// DefaultMinHeadroom is the backlog floor below which a pinned node
	// is always acceptable, so an idle cluster never spills placements
	// off the hash ring just because the mean lag is zero.
	DefaultMinHeadroom = 100 * simtime.Microsecond
)

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	index int // node index
}

// ullAffinity implements consistent hashing with bounded loads over the
// uLL-reserved nodes. A uLL function hashes to a ring position; the
// first reserved node at or after it owns the function. Ownership only
// moves when the owner's backlog exceeds the bound — then the walk
// continues around the ring, so spill is deterministic and minimal.
// Non-uLL functions avoid the reserved nodes entirely while any
// unreserved node is healthy.
type ullAffinity struct {
	ring        []ringPoint
	reserved    []int   // node indexes with ULLSlots > 0, ascending
	unres       []*Node // nodes without uLL reservations, index order
	boundFactor float64
	minHeadroom simtime.Duration

	// visited is per-pick scratch for the ring walk: visited[i] ==
	// visitGen marks node i as seen this pick. The node set is fixed at
	// construction and routing runs only on the coordinator, so the
	// scratch keeps the route path allocation-free without a lock.
	visited  []uint32 //horselint:coordinator
	visitGen uint32   //horselint:coordinator
}

func newULLAffinity(c *Cluster, vnodes int, boundFactor float64, minHeadroom simtime.Duration) *ullAffinity {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	if boundFactor <= 1 {
		boundFactor = DefaultBoundFactor
	}
	if minHeadroom <= 0 {
		minHeadroom = DefaultMinHeadroom
	}
	a := &ullAffinity{
		boundFactor: boundFactor,
		minHeadroom: minHeadroom,
		visited:     make([]uint32, len(c.nodes)),
	}
	for _, n := range c.nodes {
		if !n.ULLReserved() {
			a.unres = append(a.unres, n)
			continue
		}
		a.reserved = append(a.reserved, n.index)
		for k := 0; k < vnodes; k++ {
			a.ring = append(a.ring, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", n.id, k)),
				index: n.index,
			})
		}
	}
	sort.Slice(a.ring, func(i, j int) bool {
		if a.ring[i].hash != a.ring[j].hash {
			return a.ring[i].hash < a.ring[j].hash
		}
		return a.ring[i].index < a.ring[j].index
	})
	return a
}

func (*ullAffinity) name() string { return PolicyULLAffinity }

// reset is a no-op: the ring and spill thresholds are pure functions of
// construction-time state, and the visited scratch is per-pick.
func (*ullAffinity) reset() {}

//horselint:hotpath
//horselint:coordinator
func (a *ullAffinity) pick(c *Cluster, fn string, ull bool, excluded map[int]bool, now simtime.Time) (*Node, error) {
	if !ull {
		// Steer background traffic off the reserved nodes while any
		// unreserved node can take it.
		if n, err := minLag(a.unres, excluded, now); err == nil {
			return n, nil
		}
		return minLag(c.nodes, excluded, now)
	}
	if len(a.ring) == 0 {
		// No reserved capacity configured: degrade to least-loaded.
		return minLag(c.nodes, excluded, now)
	}
	allowed := a.allowedLag(c, excluded, now)
	// Binary search for the first ring point at or after the function's
	// hash (an open-coded sort.Search: the closure it takes would
	// allocate on every pick).
	target := hash64(fn)
	lo, hi := 0, len(a.ring)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.ring[mid].hash < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo % len(a.ring)
	// Walk the ring once, visiting each distinct node in ring order.
	// Scratch generation bump; on wraparound, clear and restart at 1.
	a.visitGen++
	if a.visitGen == 0 {
		for i := range a.visited {
			a.visited[i] = 0
		}
		a.visitGen = 1
	}
	seen := 0
	var fallback *Node
	var fallbackLag simtime.Duration
	for i := 0; i < len(a.ring) && seen < len(a.reserved); i++ {
		pt := a.ring[(start+i)%len(a.ring)]
		if a.visited[pt.index] == a.visitGen {
			continue
		}
		a.visited[pt.index] = a.visitGen
		seen++
		n := c.nodes[pt.index]
		if !eligible(n, excluded) {
			continue
		}
		lag := n.Lag(now)
		if lag <= allowed {
			return n, nil
		}
		// Remember the least-lagged reserved node in case every one of
		// them is over the bound (the bound then degenerates to
		// least-loaded over the reserved set, still deterministic).
		if fallback == nil || lag < fallbackLag {
			fallback, fallbackLag = n, lag
		}
	}
	if fallback != nil {
		return fallback, nil
	}
	// Every reserved node is down or excluded: spill to any healthy node
	// so availability beats affinity.
	return minLag(c.nodes, excluded, now)
}

// allowedLag computes the bounded-load threshold: boundFactor × the mean
// backlog across eligible reserved nodes, floored at minHeadroom.
//
//horselint:hotpath
func (a *ullAffinity) allowedLag(c *Cluster, excluded map[int]bool, now simtime.Time) simtime.Duration {
	var sum simtime.Duration
	count := 0
	for _, idx := range a.reserved {
		n := c.nodes[idx]
		if !eligible(n, excluded) {
			continue
		}
		sum += n.Lag(now)
		count++
	}
	if count == 0 {
		return a.minHeadroom
	}
	bound := simtime.Duration(a.boundFactor * float64(sum) / float64(count))
	if bound < a.minHeadroom {
		return a.minHeadroom
	}
	return bound
}

// FNV-1a constants (hash/fnv's, open-coded: the stdlib hash object and
// the []byte conversion it needs both allocate on every pick).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hash64 is the ring hash (FNV-1a, bit-identical to hash/fnv New64a
// and to the seed-mixing hash used by faultinject and loadgen).
//
//horselint:hotpath
func hash64(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}
