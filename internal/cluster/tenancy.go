package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/tenant"
)

// Tenancy errors.
var (
	// ErrAdmissionRejected marks a trigger refused at the tenant
	// admission gate — rate limit or uLL fair share — before any routing
	// decision. Distinct from ErrNoNodes: the cluster had capacity, the
	// tenant had no budget.
	ErrAdmissionRejected = errors.New("cluster: tenant admission rejected")
	// ErrUnknownTenant reports a tenant name that is not in the
	// cluster's tenant contract.
	ErrUnknownTenant = errors.New("cluster: unknown tenant")
)

// Rejection reasons, used as the report's rejection breakdown.
const (
	// RejectReasonNoNodes is a trigger that found no eligible node:
	// every node draining, failed, or excluded by failover.
	RejectReasonNoNodes = "no-nodes"
	// RejectReasonAdmission is a trigger refused at the tenant admission
	// gate before routing.
	RejectReasonAdmission = "admission"
)

// admissionError renders one admission reject. The tenant name and the
// gate that fired are both in the message so a trace or report error
// string attributes the reject without cross-referencing counters.
func admissionError(tenantName string, v tenant.Verdict) error {
	return fmt.Errorf("%w: tenant %q over its %s budget", ErrAdmissionRejected, tenantName, v.Reason())
}

// rejectionReason classifies a rejection error for the report's
// breakdown. Callers have already established isRejection(err).
func rejectionReason(err error) string {
	if errors.Is(err, ErrAdmissionRejected) {
		return RejectReasonAdmission
	}
	return RejectReasonNoNodes
}

// Tenants returns the cluster's tenant admission controller (nil when
// the cluster was built without a tenant contract).
func (c *Cluster) Tenants() *tenant.Controller { return c.tenants }

// BindTenant attributes a registered function to a tenant: its triggers
// are admission-gated against the tenant's rate and uLL-share budgets,
// and its pools count against the tenant's slot entitlement and memory
// quota. Binding the same function to the same tenant again is a no-op;
// rebinding to a different tenant is an error (attribution must be
// stable within a run). An empty tenant name is a no-op: the function
// stays untenanted and is never gated. Bind before provisioning: the
// contract gates admission immediately but clamps pools only from the
// next ScaleCluster — it never retroactively shrinks holdings.
//
//horselint:coordinator
func (c *Cluster) BindTenant(name, tenantName string) error {
	entry, ok := c.deployments[name]
	if !ok {
		return fmt.Errorf("%w: %q", faas.ErrUnknownFunction, name)
	}
	if tenantName == "" {
		return nil
	}
	if c.tenants == nil {
		return fmt.Errorf("%w: %q (no tenant contract configured)", ErrUnknownTenant, tenantName)
	}
	idx, ok := c.tenants.Lookup(tenantName)
	if !ok {
		return fmt.Errorf("%w: %q (known: %s)", ErrUnknownTenant, tenantName, strings.Join(c.tenants.Names(), ", "))
	}
	if entry.tenant >= 0 && entry.tenant != idx {
		return fmt.Errorf("cluster: %q is already bound to tenant %q, cannot rebind to %q", name, entry.tenantName, tenantName)
	}
	entry.tenant = idx
	entry.tenantName = tenantName
	c.deployments[name] = entry
	return nil
}

// clusterULLSlots sums the Up nodes' reserved uLL slots — the live
// capacity the tenant entitlements share. Failed and draining nodes
// drop out, shrinking the borrowable pool (entitlements themselves stay
// as apportioned at construction; scaleTargets caps what can actually
// be placed).
func (c *Cluster) clusterULLSlots() int {
	total := 0
	for _, n := range c.nodes {
		if n.health != Up {
			continue
		}
		total += n.spec.ULLSlots
	}
	return total
}

// tenantHorseHeld returns the HORSE pool entries a tenant's functions
// hold across the healthy nodes, computed live from the pools (the same
// anti-drift idiom as Node.committedMB).
func (c *Cluster) tenantHorseHeld(idx int) int {
	held := 0
	for name, entry := range c.deployments {
		if entry.tenant != idx {
			continue
		}
		held += c.poolTotal(name, core.Horse)
	}
	return held
}

// horseHeldTotal returns every deployment's HORSE pool entries across
// the healthy nodes, tenanted or not.
func (c *Cluster) horseHeldTotal() int {
	held := 0
	for name := range c.deployments {
		held += c.poolTotal(name, core.Horse)
	}
	return held
}

// tenantCommittedMB returns the sandbox memory a tenant's functions
// hold across the healthy nodes' pools (all policies).
func (c *Cluster) tenantCommittedMB(idx int) int {
	total := 0
	for name, entry := range c.deployments {
		if entry.tenant != idx {
			continue
		}
		for _, n := range c.nodes {
			if n.health != Up {
				continue
			}
			if stats, err := n.platform.PoolStats(name); err == nil {
				total += stats.CommittedMB
			}
		}
	}
	return total
}

// tenantFunctions returns the function names bound to a tenant, sorted,
// so every walk over a tenant's holdings is deterministic.
func (c *Cluster) tenantFunctions(idx int) []string {
	var names []string
	for name, entry := range c.deployments {
		if entry.tenant == idx {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// clampTenantScale bounds a tenanted deployment's pool request by the
// tenant contract before placement. For HORSE pools this enforces the
// weighted-fair slot split with borrow-and-reclaim semantics:
//
//   - Growth within the tenant's entitlement is guaranteed — if the
//     free uLL capacity is short, borrowed (over-entitlement) holdings
//     of other tenants are reclaimed to make room.
//   - Growth beyond the entitlement (borrowing) is granted only from
//     genuinely free capacity: it never evicts another tenant's pools,
//     so an idle share is reclaimable but an active one is
//     preemption-protected.
//
// Every policy's placement is additionally capped by the tenant's
// memory quota (MemoryMB 0 = unlimited). Returns the clamped target.
//
//horselint:coordinator
func (c *Cluster) clampTenantScale(idx int, name string, total int, policy core.Policy) int {
	entry := c.deployments[name]
	spec := c.tenants.Spec(idx)
	// Memory quota: what the tenant's other pools commit stays; entries
	// this rescale replaces come back as budget (mirroring scaleTargets'
	// free-memory accounting).
	if spec.MemoryMB > 0 && entry.spec.MemoryMB > 0 {
		otherMB := c.tenantCommittedMB(idx) - c.poolTotal(name, policy)*entry.spec.MemoryMB
		byQuota := (spec.MemoryMB - otherMB) / entry.spec.MemoryMB
		if byQuota < 0 {
			byQuota = 0
		}
		if total > byQuota {
			total = byQuota
		}
	}
	if policy != core.Horse {
		return total
	}
	cur := c.poolTotal(name, core.Horse)
	delta := total - cur
	if delta <= 0 {
		// Shrinking a tenant's own holdings is always allowed.
		return total
	}
	entGrowth := c.tenants.Entitlement(idx) - c.tenantHorseHeld(idx)
	if entGrowth < 0 {
		entGrowth = 0
	}
	if entGrowth > delta {
		entGrowth = delta
	}
	free := c.clusterULLSlots() - c.horseHeldTotal()
	if free < 0 {
		free = 0
	}
	if entGrowth > free {
		// The guaranteed part of the request is blocked by borrowers:
		// reclaim their over-entitlement holdings, most-borrowed first.
		c.reclaimBorrowedSlots(idx, entGrowth-free)
		free = c.clusterULLSlots() - c.horseHeldTotal()
		if free < 0 {
			free = 0
		}
	}
	grant := entGrowth
	if grant > free {
		grant = free
	}
	if borrow := delta - entGrowth; borrow > 0 {
		// The over-entitlement part only takes what is genuinely free.
		if spare := free - grant; borrow > spare {
			borrow = spare
		}
		grant += borrow
	}
	return cur + grant
}

// reclaimBorrowedSlots frees up to need HORSE slots by shrinking other
// tenants' holdings above their entitlements. Victims are walked most
// borrowed first (ties by tenant name), their functions in sorted name
// order, so reclamation is deterministic. Holdings at or below the
// entitlement are never touched — that is the preemption protection.
// Untenanted HORSE pools are outside the contract and are never
// reclaimed either.
//
//horselint:coordinator
func (c *Cluster) reclaimBorrowedSlots(requester, need int) {
	type victim struct {
		idx      int
		name     string
		borrowed int
	}
	var victims []victim
	for i := 0; i < c.tenants.Len(); i++ {
		if i == requester {
			continue
		}
		borrowed := c.tenantHorseHeld(i) - c.tenants.Entitlement(i)
		if borrowed > 0 {
			victims = append(victims, victim{idx: i, name: c.tenants.Spec(i).Name, borrowed: borrowed})
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].borrowed != victims[j].borrowed {
			return victims[i].borrowed > victims[j].borrowed
		}
		return victims[i].name < victims[j].name
	})
	for _, v := range victims {
		if need <= 0 {
			return
		}
		take := v.borrowed
		if take > need {
			take = need
		}
		for _, fn := range c.tenantFunctions(v.idx) {
			if take <= 0 {
				break
			}
			held := c.poolTotal(fn, core.Horse)
			if held == 0 {
				continue
			}
			cut := take
			if cut > held {
				cut = held
			}
			// The shrink bypasses the clamp on purpose: it reduces the
			// victim's own holdings, which is always contract-legal.
			if _, err := c.applyScale(fn, held-cut, core.Horse); err != nil {
				// A failed shrink leaves the victim's holdings as they
				// are; the requester's grant is simply smaller.
				continue
			}
			take -= cut
			need -= cut
		}
	}
}

// publishTenantOccupancy refreshes the per-tenant uLL slot occupancy
// gauges from the live pools. Called after every pool-mutating cluster
// operation; cheap (coordinator-only, pool stats reads).
//
//horselint:coordinator
func (c *Cluster) publishTenantOccupancy() {
	if c.tenants == nil {
		return
	}
	for i := 0; i < c.tenants.Len(); i++ {
		c.tenants.SetOccupancy(i, c.tenantHorseHeld(i))
	}
}
