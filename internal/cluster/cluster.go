// Package cluster scales the single-node HORSE platform out to a
// deterministic multi-node deployment: N faas.Platform nodes behind a
// Router with pluggable placement policies, cluster-wide pool
// operations, and failure handling that reuses the platform's graceful
// degradation when a node dies mid-trigger (DESIGN.md §11).
//
// Everything runs on virtual time. The cluster owns a global clock
// (driven by the loadgen/eventsim arrival stream); each node's platform
// keeps its own local clock, synchronized forward to the cluster
// instant before serving. A node whose local clock runs ahead of the
// cluster clock has backlog, and that lag is both the queueing delay
// the next trigger will see and the load score the least-loaded and
// bounded-load policies place against. Same seed, same options ⇒ the
// same placements, the same failures, and a byte-identical report.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/eventsim"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/faultinject"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/telemetry"
	"github.com/horse-faas/horse/internal/tenant"
	"github.com/horse-faas/horse/internal/trigtrace"
	"github.com/horse-faas/horse/internal/workload"
)

// Cluster errors.
var (
	// ErrUnknownNode reports a node id that is not in the cluster.
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrNodeNotUp reports a lifecycle operation on a node that has
	// already left the Up state.
	ErrNodeNotUp = errors.New("cluster: node is not up")
	// ErrInvokeNotRetried marks an invocation-failure that the cluster
	// deliberately did not fail over: the function body started running,
	// so re-triggering it on another node would double-execute user code.
	ErrInvokeNotRetried = errors.New("cluster: invocation failed; not retried on another node")
)

// Failover reasons, used as the cluster_failovers_total{reason} label
// and the report's failover breakdown.
const (
	// ReasonNodeFailed is a routing decision voided by the picked node
	// failing (faultinject site cluster.node.fail).
	ReasonNodeFailed = "node-failed"
	// ReasonNodeDraining is a routing decision voided by the picked node
	// starting a drain (faultinject site cluster.node.drain).
	ReasonNodeDraining = "node-draining"
	// ReasonTriggerFailed is a trigger whose serving node exhausted the
	// platform's own fallback chain and was retried elsewhere.
	ReasonTriggerFailed = "trigger-failed"
)

// deploymentEntry is the cluster's record of one registered function.
// tenant is the owning tenant's index in the cluster's controller (-1
// for untenanted functions, which are never admission-gated);
// tenantName is its name, carried into traces and the report.
type deploymentEntry struct {
	fn         workload.Function
	spec       faas.SandboxSpec
	ull        bool
	tenant     int
	tenantName string
}

// Options configures a Cluster.
type Options struct {
	// Nodes is the node count when Specs is empty; every node gets Spec
	// (defaults applied).
	Nodes int
	// Spec is the homogeneous node spec used with Nodes.
	Spec NodeSpec
	// Specs, when non-empty, sizes a heterogeneous cluster explicitly
	// and overrides Nodes/Spec.
	Specs []NodeSpec
	// Policy is the placement policy name (default round-robin).
	Policy string
	// Seed drives every PRNG in the cluster's run (loadgen streams; the
	// fault injector is seeded by its own constructor).
	Seed int64
	// Faults is checked at the cluster.node.* sites on every routing
	// decision and threaded into each node's platform so the §7 sites
	// (create/pause/resume/restore/invoke/destroy) fire there too. Nil
	// injects nothing.
	Faults *faultinject.Injector
	// Metrics receives the cluster instruments and is shared by every
	// node's platform, so per-mode counters aggregate cluster-wide.
	Metrics *telemetry.Registry
	// Fallback is each node's graceful-degradation config; the zero
	// value disables per-node fallback.
	Fallback faas.FallbackConfig
	// VirtualNodes, BoundFactor, and MinHeadroom tune the ull-affinity
	// ring (zero selects DefaultVirtualNodes/DefaultBoundFactor/
	// DefaultMinHeadroom).
	VirtualNodes int
	BoundFactor  float64
	MinHeadroom  simtime.Duration
	// Tenants, when non-empty, arms the multi-tenant admission gate:
	// every tenant-bound function's triggers are rate-limited against
	// its token bucket, and its uLL triggers share the reserved uLL
	// admission bandwidth by weight (DESIGN.md §14). The reserved slot
	// entitlements are apportioned over the cluster's total ULLSlots.
	Tenants []tenant.Spec
	// ULLAdmitRate is the aggregate uLL admissions/second the tenants'
	// weighted fair shares divide (0 disables the share gate; per-tenant
	// rate limits still apply).
	ULLAdmitRate float64
	// Trace, when non-nil, records an end-to-end span tree per trigger
	// (DESIGN.md §12). Run arms one automatically when this is nil; a
	// direct Trigger caller without one pays only the inert-context
	// early-returns (BenchmarkContextDisabled).
	Trace *trigtrace.Recorder
	// Shards is how many worker goroutines Run's conservative-PDES
	// serve phase drains the node-local engines on (DESIGN.md §13).
	// Values outside [1, len(nodes)] are clamped; 0 selects 1
	// (sequential). The report is byte-identical at every shard count:
	// sharding bounds only which goroutine serves which node, never
	// what any node computes.
	Shards int
}

// Cluster is a deterministic multi-node HORSE deployment.
//
// The field annotations below encode the conservative-PDES ownership
// split (DESIGN.md §9, §13): coordinator-owned state may only be
// touched between serve barriers, and the shardsafe/sharedrand
// analyzers reject any shard-phase path that reaches it. clock,
// engine, and nodes stay unannotated on purpose — the node *list* is
// immutable during a run and read by every shard to find its own
// nodes, while the coordinator's pump engine is covered by eventsim's
// own shard-local annotations (ownership is per instance).
type Cluster struct {
	clock  *simtime.Clock
	engine *eventsim.Engine
	nodes  []*Node
	router *Router //horselint:coordinator

	deployments map[string]deploymentEntry
	faults      *faultinject.Injector //horselint:coordinator
	metrics     *telemetry.Registry
	seed        int64
	shards      int

	// tenants is the multi-tenant admission controller (nil without a
	// tenant contract). Admission runs on the coordinator in arrival
	// order — the gate is cross-tenant shared state, exactly the kind
	// of decision the PDES contract centralizes.
	tenants *tenant.Controller //horselint:coordinator

	// rec, seq, and sloBudgets drive per-trigger tracing: rec mints one
	// context per arrival (seq is the arrival index its trace ID derives
	// from), and sloBudgets carries each function's latency budget into
	// the trace's SLO verdict. All nil/zero when tracing is off.
	rec        *trigtrace.Recorder         //horselint:coordinator
	seq        uint64                      //horselint:coordinator
	sloBudgets map[string]simtime.Duration //horselint:coordinator

	rejected     uint64            //horselint:coordinator
	failed       uint64            //horselint:coordinator
	failovers    map[string]uint64 //horselint:coordinator
	rehomeFailed uint64            //horselint:coordinator
}

// New builds a cluster of fresh nodes at the simulation epoch.
//
//horselint:coordinator
func New(opts Options) (*Cluster, error) {
	specs := opts.Specs
	if len(specs) == 0 {
		if opts.Nodes <= 0 {
			return nil, errors.New("cluster: need at least one node")
		}
		specs = make([]NodeSpec, opts.Nodes)
		for i := range specs {
			specs[i] = opts.Spec
		}
	}
	policy := opts.Policy
	if policy == "" {
		policy = PolicyRoundRobin
	}
	engine := eventsim.New(nil)
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > len(specs) {
		shards = len(specs)
	}
	c := &Cluster{
		clock:       engine.Clock(),
		engine:      engine,
		deployments: make(map[string]deploymentEntry),
		faults:      opts.Faults,
		metrics:     opts.Metrics,
		seed:        opts.Seed,
		shards:      shards,
		rec:         opts.Trace,
		failovers:   make(map[string]uint64),
	}
	for i, spec := range specs {
		spec = spec.withDefaults()
		ullQueues := spec.ULLSlots
		if ullQueues < 1 {
			ullQueues = 1
		}
		id := fmt.Sprintf("node%02d", i)
		p, err := faas.New(faas.Options{
			CPUs:      spec.CPUs,
			ULLQueues: ullQueues,
			Metrics:   opts.Metrics,
			// Each node's platform gets its own derived fault stream so
			// the §7 sites draw independently per node: a shard serving
			// node02 never advances node00's PRNG, which is what keeps
			// fault decisions identical at every shard count. The
			// cluster-level sites (cluster.node.*) stay on the parent
			// injector, checked only at the single-threaded coordinator.
			Faults:   opts.Faults.Derive(id),
			Fallback: opts.Fallback,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, &Node{
			id:       id,
			index:    i,
			spec:     spec,
			platform: p,
			engine:   eventsim.New(p.Clock()),
			health:   Up,
			// Prebind the per-trigger instruments so the hot path skips
			// the registry lookup (nil registry ⇒ inert nil handles).
			triggers: opts.Metrics.Counter("cluster_triggers_total", "node", id, "policy", policy),
			load:     opts.Metrics.Gauge("cluster_node_load", "node", id),
		})
	}
	if len(opts.Tenants) > 0 {
		slots := 0
		for _, n := range c.nodes {
			slots += n.spec.ULLSlots
		}
		ctrl, err := tenant.New(opts.Tenants, tenant.Options{
			Slots:   slots,
			ULLRate: opts.ULLAdmitRate,
			Metrics: opts.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: tenants: %w", err)
		}
		c.tenants = ctrl
	}
	router, err := newRouter(policy, c, opts.VirtualNodes, opts.BoundFactor, opts.MinHeadroom)
	if err != nil {
		return nil, err
	}
	router.tenants = c.tenants
	c.router = router
	return c, nil
}

// Clock returns the cluster's global virtual clock.
func (c *Cluster) Clock() *simtime.Clock { return c.clock }

// Engine returns the cluster's discrete-event engine (the loadgen
// arrival stream installs into it).
func (c *Cluster) Engine() *eventsim.Engine { return c.engine }

// Nodes returns the cluster's nodes in index order. The slice is the
// cluster's own; callers must not mutate it.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Router returns the cluster's router.
func (c *Cluster) Router() *Router { return c.router }

// Seed returns the seed the cluster was built with.
func (c *Cluster) Seed() int64 { return c.seed }

// Trace returns the armed trigger-trace recorder (nil when tracing is
// off).
func (c *Cluster) Trace() *trigtrace.Recorder { return c.rec }

// SetTrace arms (or, with nil, disarms) the trigger-trace recorder.
//
//horselint:coordinator
func (c *Cluster) SetTrace(rec *trigtrace.Recorder) { c.rec = rec }

// SetSLOBudget sets the latency budget a function's traces are judged
// against (0 removes it). Run seeds these from its per-function
// budgets; direct Trigger callers may set them explicitly.
//
//horselint:coordinator
func (c *Cluster) SetSLOBudget(name string, budget simtime.Duration) {
	if c.sloBudgets == nil {
		c.sloBudgets = make(map[string]simtime.Duration)
	}
	c.sloBudgets[name] = budget
}

// Rejected returns how many triggers found no eligible node.
func (c *Cluster) Rejected() uint64 { return c.rejected }

// Failed returns how many triggers failed on-node without being
// retried elsewhere (invocation failures).
func (c *Cluster) Failed() uint64 { return c.failed }

// Failovers returns the total re-routing decisions taken.
func (c *Cluster) Failovers() uint64 {
	var total uint64
	for _, n := range c.failovers {
		total += n
	}
	return total
}

// FailoversByReason returns the failover breakdown. The caller owns the
// returned map.
func (c *Cluster) FailoversByReason() map[string]uint64 {
	out := make(map[string]uint64, len(c.failovers))
	for reason, n := range c.failovers {
		out[reason] = n
	}
	return out
}

// RehomeFailures returns how many drain re-homing operations failed
// partway (the drain still completes; capacity is degraded).
func (c *Cluster) RehomeFailures() uint64 { return c.rehomeFailed }

// node looks a node up by id.
func (c *Cluster) node(id string) (*Node, error) {
	for _, n := range c.nodes {
		if n.id == id {
			return n, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
}

// RegisterEverywhere deploys fn on every node so any placement decision
// can serve it. Whether the function is uLL (and therefore eligible for
// HORSE pools and ull-affinity pinning) comes from its workload
// category.
func (c *Cluster) RegisterEverywhere(fn workload.Function, spec faas.SandboxSpec) error {
	if fn == nil {
		return errors.New("cluster: nil function")
	}
	if _, ok := c.deployments[fn.Name()]; ok {
		return fmt.Errorf("%w: %q", faas.ErrAlreadyDeployed, fn.Name())
	}
	for _, n := range c.nodes {
		if _, err := n.platform.Register(fn, spec); err != nil {
			return fmt.Errorf("cluster: register %q on %s: %w", fn.Name(), n.id, err)
		}
	}
	c.deployments[fn.Name()] = deploymentEntry{fn: fn, spec: spec, ull: fn.Category().ULL(), tenant: -1}
	return nil
}

// DeploymentNames returns the registered function names in sorted order.
func (c *Cluster) DeploymentNames() []string {
	names := make([]string, 0, len(c.deployments))
	for name := range c.deployments {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// scaleTargets assigns total warm-pool entries for one deployment and
// policy across the eligible nodes, round-robin one slot at a time so a
// heterogeneous cluster fills evenly. HORSE pools are confined to
// uLL-reserved nodes and capped at each node's ULLSlots minus the
// reserved slots other functions' HORSE pools already occupy (the
// slots are one physical resource, not a per-function allowance);
// every placement is admitted against the node's live sandbox-memory
// commitment. Returns the eligible nodes and their targets.
func (c *Cluster) scaleTargets(name string, total int, policy core.Policy) ([]*Node, []int) {
	entry := c.deployments[name]
	var nodes []*Node
	var caps []int
	for _, n := range c.nodes {
		if n.health != Up {
			continue
		}
		if policy == core.Horse && !n.ULLReserved() {
			continue
		}
		// Entries this rescale replaces come back as free memory.
		freeMB := n.spec.MemoryMB - n.committedMB(c) + n.poolCount(name, policy)*entry.spec.MemoryMB
		cap := freeMB / entry.spec.MemoryMB
		if cap < 0 {
			cap = 0
		}
		if policy == core.Horse {
			if slots := n.spec.ULLSlots - n.horseOccupied(c, name); cap > slots {
				cap = slots
			}
			if cap < 0 {
				cap = 0
			}
		}
		nodes = append(nodes, n)
		caps = append(caps, cap)
	}
	targets := make([]int, len(nodes))
	remaining := total
	for remaining > 0 {
		progressed := false
		for i := range nodes {
			if remaining == 0 {
				break
			}
			if targets[i] < caps[i] {
				targets[i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return nodes, targets
}

// ScaleCluster sets the cluster-wide warm-pool size for one deployment
// and resume policy, distributing the entries across the eligible nodes
// (see scaleTargets). It returns how many entries are now placed; when
// capacity caps the placement below total, the remainder is simply not
// placed — triggers beyond the warm capacity degrade through the
// fallback chain instead of failing. A tenant-bound deployment's
// request is first clamped by the tenant contract (clampTenantScale):
// HORSE slots by the weighted-fair entitlement with borrow-and-reclaim,
// every pool by the tenant's memory quota.
func (c *Cluster) ScaleCluster(name string, total int, policy core.Policy) (int, error) {
	entry, ok := c.deployments[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", faas.ErrUnknownFunction, name)
	}
	if total < 0 {
		return 0, fmt.Errorf("cluster: negative pool target %d", total)
	}
	if c.tenants != nil && entry.tenant >= 0 {
		total = c.clampTenantScale(entry.tenant, name, total, policy)
	}
	placed, err := c.applyScale(name, total, policy)
	c.publishTenantOccupancy()
	return placed, err
}

// applyScale places one deployment's pool target across the eligible
// nodes with no tenancy clamp — the shared lower half of ScaleCluster,
// also used by the reclaim path to shrink a victim's own holdings.
func (c *Cluster) applyScale(name string, total int, policy core.Policy) (int, error) {
	nodes, targets := c.scaleTargets(name, total, policy)
	placed := 0
	for i, n := range nodes {
		if err := n.platform.ScaleTo(name, targets[i], policy); err != nil {
			return placed, fmt.Errorf("cluster: scale %q to %d on %s: %w", name, targets[i], n.id, err)
		}
		placed += targets[i]
	}
	return placed, nil
}

// poolTotal sums the healthy nodes' warm-pool entries for one
// deployment and policy.
func (c *Cluster) poolTotal(name string, policy core.Policy) int {
	total := 0
	for _, n := range c.nodes {
		if n.health != Up {
			continue
		}
		total += n.poolCount(name, policy)
	}
	return total
}

// Rebalance redistributes every deployment's current warm capacity
// across the healthy nodes — the periodic repair step that undoes the
// skew left behind by drains, failures, and reaping.
func (c *Cluster) Rebalance() error {
	for _, name := range c.DeploymentNames() {
		for _, policy := range []core.Policy{core.Vanilla, core.Horse} {
			total := c.poolTotal(name, policy)
			if total == 0 {
				continue
			}
			if _, err := c.ScaleCluster(name, total, policy); err != nil {
				return err
			}
		}
	}
	return nil
}

// Drain gracefully removes a node: it stops receiving new triggers
// immediately, and its warm capacity is re-homed onto the surviving
// nodes deployment by deployment. A re-homing error degrades capacity
// but never cancels the drain — the node is going away regardless.
//
//horselint:coordinator
func (c *Cluster) Drain(id string) error {
	n, err := c.node(id)
	if err != nil {
		return err
	}
	if n.health != Up {
		return fmt.Errorf("%w: %s is %s", ErrNodeNotUp, id, n.health)
	}
	n.health = Draining
	var firstErr error
	for _, name := range c.DeploymentNames() {
		for _, policy := range []core.Policy{core.Vanilla, core.Horse} {
			departing := n.poolCount(name, policy)
			if departing == 0 {
				continue
			}
			survivors := c.poolTotal(name, policy)
			if err := n.platform.ScaleTo(name, 0, policy); err != nil {
				// The pool shrink failed partway; the node keeps its
				// orphaned sandboxes, which no trigger will ever reach.
				c.rehomeFailed++
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: drain %s: release %q: %w", id, name, err)
				}
				continue
			}
			if _, err := c.ScaleCluster(name, survivors+departing, policy); err != nil {
				c.rehomeFailed++
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: drain %s: re-home %q: %w", id, name, err)
				}
			}
		}
	}
	c.publishTenantOccupancy()
	return firstErr
}

// Fail hard-kills a node: health goes to Failed and its pools are lost
// with it — no re-homing, the capacity must be rebuilt by ScaleCluster
// or Rebalance on the survivors.
//
//horselint:coordinator
func (c *Cluster) Fail(id string) error {
	n, err := c.node(id)
	if err != nil {
		return err
	}
	if n.health == Failed {
		return fmt.Errorf("%w: %s is already failed", ErrNodeNotUp, id)
	}
	n.health = Failed
	// The node's pools died with it; the tenants' occupancy gauges must
	// not keep counting them.
	c.publishTenantOccupancy()
	return nil
}

// resetRunState clears every piece of per-run accumulator state so
// back-to-back Runs on one cluster report exactly what a fresh cluster
// would. Before this reset existed, a second Run inherited the first
// run's rejected/failed/failover tallies, node placement counters, the
// round-robin cursor, stale SLO budgets, and — worst — the lazily
// armed trace recorder's aggregates and retained flight traces, so its
// report double-counted the previous experiment. Cumulative state that
// is cumulative by design survives: the telemetry registry's
// instruments, the fault injector's visit counters, and the node-local
// clocks (Run settles those into a well-defined start instant).
//
//horselint:coordinator
func (c *Cluster) resetRunState() {
	c.seq = 0
	c.rejected = 0
	c.failed = 0
	c.rehomeFailed = 0
	c.failovers = make(map[string]uint64)
	c.sloBudgets = nil
	c.router.policy.reset()
	c.rec.Reset()
	// The admission controller's buckets, deficits, and tallies are
	// per-run state; occupancy is republished from the live pools so a
	// run starts with gauges that match what is actually placed.
	c.tenants.ResetCounters()
	c.publishTenantOccupancy()
	for _, n := range c.nodes {
		n.placements = 0
		n.served = 0
	}
}

// countFailover records one voided routing decision.
//
//horselint:coordinator
func (c *Cluster) countFailover(reason string) {
	c.failovers[reason]++
	c.metrics.Counter("cluster_failovers_total", "reason", reason).Inc()
}

// Placement describes where and how one trigger was served.
type Placement struct {
	// Node and NodeIndex identify the serving node (empty/-1 when the
	// trigger was rejected).
	Node      string
	NodeIndex int
	// Failovers counts the voided routing decisions before this one.
	Failovers int
	// Wait is the virtual time the trigger queued behind the node's
	// backlog before its sandbox work began.
	Wait simtime.Duration
	// Latency is arrival-to-completion: Wait plus the invocation's
	// init and exec.
	Latency simtime.Duration
}

// Trigger routes one invocation through the placement policy and serves
// it, failing over across nodes when the picked node dies, drains, or
// exhausts its local fallback chain. The returned Placement reports
// where it landed and what it cost end to end.
//
//horselint:coordinator
func (c *Cluster) Trigger(name string, mode faas.StartMode, payload []byte) (faas.Invocation, Placement, error) {
	entry, ok := c.deployments[name]
	if !ok {
		return faas.Invocation{}, Placement{NodeIndex: -1}, fmt.Errorf("%w: %q", faas.ErrUnknownFunction, name)
	}
	arrival := c.clock.Now()
	var tc trigtrace.Context
	if c.rec != nil {
		tc = c.rec.Start(c.seq, name, mode.String(), arrival, c.sloBudgets[name])
		c.seq++
	}
	tc.SetTenant(entry.tenantName)
	// The tenant admission gate runs before any routing decision: a
	// reject consumes no placement and charges the tenant, not the
	// cluster's capacity.
	if v := c.router.Admit(entry.tenant, arrival, entry.ull); v != tenant.Admitted {
		c.rejected++
		err := admissionError(entry.tenantName, v)
		tc.Complete(trigtrace.Outcome{Err: err.Error()})
		return faas.Invocation{}, Placement{NodeIndex: -1}, err
	}
	// excluded is allocated lazily on the first failover: the common
	// trigger serves on the first pick and never needs the map.
	var excluded map[int]bool
	failovers := 0
	exclude := func(idx int) {
		if excluded == nil {
			excluded = make(map[int]bool, len(c.nodes))
		}
		excluded[idx] = true
	}
	var lastErr error
	for {
		n, err := c.router.Pick(c, name, entry.ull, excluded, arrival)
		if err != nil {
			c.rejected++
			if lastErr != nil {
				err = fmt.Errorf("%w (last node error: %v)", err, lastErr)
			}
			tc.Complete(trigtrace.Outcome{Err: err.Error()})
			return faas.Invocation{}, Placement{NodeIndex: -1, Failovers: failovers}, err
		}
		// One fault check per routing decision: the node we were about to
		// use can fail hard or start draining under us.
		if ferr := c.faults.Check(faultinject.SiteNodeFail); ferr != nil {
			if err := c.Fail(n.id); err != nil {
				// Unreachable: the router only picks Up nodes.
				tc.Complete(trigtrace.Outcome{Err: err.Error()})
				return faas.Invocation{}, Placement{NodeIndex: -1, Failovers: failovers}, err
			}
			c.countFailover(ReasonNodeFailed)
			tc.Reroute(arrival, n.id, ReasonNodeFailed)
			exclude(n.index)
			failovers++
			continue
		}
		if ferr := c.faults.Check(faultinject.SiteNodeDrain); ferr != nil {
			if err := c.Drain(n.id); err != nil {
				// A partial re-home degrades capacity but the node is
				// draining regardless; the failover below still applies.
				c.rehomeFailed++
			}
			c.countFailover(ReasonNodeDraining)
			tc.Reroute(arrival, n.id, ReasonNodeDraining)
			exclude(n.index)
			failovers++
			continue
		}
		local := n.platform.Clock()
		start := arrival
		if local.Now().After(start) {
			start = local.Now()
		}
		wait := start.Sub(arrival)
		local.AdvanceTo(start)
		// The placement stood; the hop's stages are recorded from mark so
		// a hop that fails after all can be rolled up into one
		// failed-attempt span covering exactly the virtual time it cost.
		mark := tc.Mark()
		tc.SetNode(n.id)
		tc.RecordOn(trigtrace.StagePlacement, arrival, 0, n.id, "", c.router.Policy())
		tc.RecordOn(trigtrace.StageQueueWait, arrival, wait, n.id, "", "")
		inv, terr := n.platform.TriggerTraced(tc, name, mode, payload)
		if terr != nil {
			consumed := local.Now().Sub(arrival)
			if errors.Is(terr, faas.ErrInvokeFailed) {
				// The function body ran and died; retrying on another
				// node would double-execute user code.
				c.failed++
				tc.CollapseFailed(mark, arrival, consumed, n.id, mode.String(), string(faultinject.SiteInvoke))
				tc.Complete(trigtrace.Outcome{Err: terr.Error()})
				return faas.Invocation{}, Placement{
					Node: n.id, NodeIndex: n.index, Failovers: failovers, Wait: wait,
				}, fmt.Errorf("%w: %v", ErrInvokeNotRetried, terr)
			}
			c.countFailover(ReasonTriggerFailed)
			tc.CollapseFailed(mark, arrival, consumed, n.id, mode.String(), ReasonTriggerFailed)
			tc.Reroute(local.Now(), n.id, ReasonTriggerFailed)
			exclude(n.index)
			failovers++
			lastErr = terr
			continue
		}
		n.served++
		// Caller-observed latency ends when the function's response is
		// ready; the re-pool pause after it is node housekeeping and
		// shows up only as backlog (Lag) for later triggers.
		latency := wait + inv.Total()
		n.triggers.Inc()
		n.load.Set(int64(n.Lag(arrival)))
		tc.Complete(trigtrace.Outcome{Served: inv.Mode.String(), Node: n.id, Latency: latency})
		return inv, Placement{
			Node: n.id, NodeIndex: n.index, Failovers: failovers, Wait: wait, Latency: latency,
		}, nil
	}
}

// Settle advances the cluster clock to the latest node-local instant,
// marking the end of setup: provisioning and registration charge the
// node-local clocks, and without a settle that work would read as
// backlog (queueing delay) to the first triggers of an experiment.
// Returns the settled instant.
func (c *Cluster) Settle() simtime.Time {
	latest := c.clock.Now()
	for _, n := range c.nodes {
		if local := n.platform.Clock().Now(); local.After(latest) {
			latest = local
		}
	}
	c.clock.AdvanceTo(latest)
	return latest
}

// Reap runs every healthy node's keep-alive reaper and returns the
// total sandboxes destroyed.
func (c *Cluster) Reap() (int, error) {
	total := 0
	for _, n := range c.nodes {
		if n.health != Up {
			continue
		}
		reaped, err := n.platform.Reap()
		total += reaped
		if err != nil {
			return total, fmt.Errorf("cluster: reap on %s: %w", n.id, err)
		}
	}
	c.publishTenantOccupancy()
	return total, nil
}
