package cluster

import (
	"bytes"
	"testing"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/faultinject"
	"github.com/horse-faas/horse/internal/loadgen"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/trigtrace"
)

// tracedScanRun is runScanCluster but returns the cluster too, so tests
// can inspect the trace recorder Run armed.
func tracedScanRun(t *testing.T, policy string, seed int64, faultRules []faultinject.Rule) (*Cluster, Report) {
	t.Helper()
	var faults *faultinject.Injector
	if len(faultRules) > 0 {
		var err error
		faults, err = faultinject.New(seed, faultRules...)
		if err != nil {
			t.Fatal(err)
		}
	}
	specs := make([]NodeSpec, 8)
	for i := range specs {
		if i < 2 {
			specs[i].ULLSlots = 2
		}
	}
	c, err := New(Options{
		Specs:    specs,
		Policy:   policy,
		Seed:     seed,
		Faults:   faults,
		Fallback: faas.FallbackConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	if _, err := c.ScaleCluster("scan", 4, core.Horse); err != nil {
		t.Fatal(err)
	}
	ws, err := loadgen.ParseWorkloads("scan=poisson:rate=1000/s,mode=horse")
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run(RunConfig{
		Workloads: ws,
		Horizon:   200 * simtime.Millisecond,
		Payloads:  map[string][]byte{"scan": scanPayload(t)},
		SLO:       map[string]simtime.Duration{"scan": 1500 * simtime.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, report
}

// TestRunTraceReconciles is the end-to-end attribution invariant: on a
// seeded run with a mid-stream node failure, every finished trigger's
// serving-class stage durations must sum exactly to its end-to-end
// placement latency, and the report's attribution table must cover the
// run.
func TestRunTraceReconciles(t *testing.T) {
	// Round-robin keeps steering HORSE triggers onto nodes without HORSE
	// pools after the failure, so the run has a rich violator population.
	rules := []faultinject.Rule{{Site: faultinject.SiteNodeFail, Nth: 20}}
	c, report := tracedScanRun(t, PolicyRoundRobin, 42, rules)
	rec := c.Trace()
	if rec == nil {
		t.Fatal("Run did not arm a trace recorder")
	}
	if rec.Finished() != report.Arrivals {
		t.Fatalf("finished traces %d, want one per arrival (%d)", rec.Finished(), report.Arrivals)
	}
	if report.TraceReconcileFailures != 0 {
		t.Fatalf("%d traces failed serving-stage/latency reconciliation", report.TraceReconcileFailures)
	}
	if report.TraceViolations != rec.Violations() {
		t.Fatalf("report violations %d != recorder violations %d", report.TraceViolations, rec.Violations())
	}
	if rec.Violations() == 0 {
		t.Fatal("node-failure run recorded no SLO violations; the reroute path is not being traced")
	}
	if len(report.Attribution) == 0 {
		t.Fatal("report has no attribution table")
	}
	var invokes uint64
	servingRows := false
	for i, row := range report.Attribution {
		if i > 0 {
			prev := report.Attribution[i-1]
			if row.Mode < prev.Mode || (row.Mode == prev.Mode && row.Stage <= prev.Stage) {
				t.Fatalf("attribution rows not sorted by (mode, stage): %q/%q after %q/%q",
					row.Mode, row.Stage, prev.Mode, prev.Stage)
			}
		}
		if row.Class == trigtrace.ClassServing {
			servingRows = true
		}
		if row.Stage == trigtrace.StageInvoke {
			invokes += row.Count
		}
	}
	if !servingRows {
		t.Fatal("attribution has no serving-class rows")
	}
	// Every served trigger runs exactly one serving invoke; failed
	// attempts collapse into failed-attempt rows instead.
	if invokes != report.Served {
		t.Fatalf("invoke-stage count %d, want one per served trigger (%d)", invokes, report.Served)
	}
}

// TestRunTraceRetainsViolators pins the flight-recorder contract: with
// the violator population under the must-keep ring capacity, every
// SLO-violating trigger's full span tree survives to Traces().
func TestRunTraceRetainsViolators(t *testing.T) {
	rules := []faultinject.Rule{{Site: faultinject.SiteNodeFail, Nth: 20}}
	c, _ := tracedScanRun(t, PolicyRoundRobin, 42, rules)
	rec := c.Trace()
	if got := rec.Flight().Evicted(); got != 0 {
		t.Fatalf("flight recorder evicted %d traces with only %d violations", got, rec.Violations())
	}
	traces := rec.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	var violated uint64
	for i, tr := range traces {
		if i > 0 && traces[i-1].Seq >= tr.Seq {
			t.Fatalf("traces not sorted by arrival sequence: %d after %d", tr.Seq, traces[i-1].Seq)
		}
		if tr.ServingTotal() != tr.Latency {
			t.Fatalf("trace %d serving stages sum to %v, want latency %v", tr.Seq, tr.ServingTotal(), tr.Latency)
		}
		if tr.EndToEnd != tr.Latency+tr.OverheadTotal() {
			t.Fatalf("trace %d end-to-end %v != latency %v + overhead %v",
				tr.Seq, tr.EndToEnd, tr.Latency, tr.OverheadTotal())
		}
		if len(tr.Stages) == 0 {
			t.Fatalf("retained trace %d has no stages", tr.Seq)
		}
		if tr.Violated {
			violated++
		}
	}
	if violated != rec.Violations() {
		t.Fatalf("retained %d violators, want all %d", violated, rec.Violations())
	}
}

// TestRunTraceOutputIsByteIdentical extends the determinism guarantee
// to the Perfetto export: same seed, same bytes.
func TestRunTraceOutputIsByteIdentical(t *testing.T) {
	render := func(seed int64) string {
		c, _ := tracedScanRun(t, PolicyULLAffinity, seed, nil)
		var buf bytes.Buffer
		if err := trigtrace.WritePerfetto(&buf, c.Trace().Traces()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(42), render(42)
	if a != b {
		t.Fatal("same seed produced different Perfetto trace files")
	}
	if a == render(43) {
		t.Fatal("different seeds produced identical Perfetto trace files")
	}
}

// TestTriggerWithoutRecorderStaysUntraced: direct Trigger calls on a
// cluster that never ran Run take the disabled tracing path.
func TestTriggerWithoutRecorderStaysUntraced(t *testing.T) {
	c := testCluster(t, PolicyRoundRobin, NodeSpec{ULLSlots: 1})
	registerScan(t, c, faas.SandboxSpec{})
	if _, err := c.ScaleCluster("scan", 1, core.Horse); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	if _, _, err := c.Trigger("scan", faas.ModeHorse, scanPayload(t)); err != nil {
		t.Fatal(err)
	}
	if c.Trace() != nil {
		t.Fatal("direct Trigger armed a trace recorder")
	}
}
