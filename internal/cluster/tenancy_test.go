package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/faultinject"
	"github.com/horse-faas/horse/internal/loadgen"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/tenant"
	"github.com/horse-faas/horse/internal/testutil"
	"github.com/horse-faas/horse/internal/trigtrace"
	"github.com/horse-faas/horse/internal/workload"
)

func natPayload(t *testing.T) []byte {
	t.Helper()
	payload, err := json.Marshal(workload.NATPacket{DstIP: "203.0.113.10", DstPort: 80})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func registerNAT(t *testing.T, c *Cluster) {
	t.Helper()
	nat, err := workload.NewNAT([]workload.NATRule{{MatchIP: "203.0.113.10", MatchPort: 80, RewriteIP: "10.0.0.5", RewritePort: 8080}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEverywhere(nat, faas.SandboxSpec{VCPUs: 1, MemoryMB: 128}); err != nil {
		t.Fatal(err)
	}
}

// adversarialRun runs the adversarial tenant-mix regression scenario
// (the loadgen preset's workloads and contract) on the 8-node topology
// with a seeded mid-stream node failure. With tenancy off the tenant
// tags are stripped and no contract is armed — the no-isolation
// baseline the fairness assertions compare against. Returns the report
// plus the full rendered byte surface (JSON, CSV, Perfetto) for the
// determinism matrix.
func adversarialRun(t *testing.T, shards int, tenancy bool) (Report, []byte) {
	t.Helper()
	preset, ok := loadgen.LookupPreset(loadgen.PresetAdversarialTenants)
	if !ok {
		t.Fatal("adversarial-tenants preset missing")
	}
	ws, err := loadgen.ParseWorkloads(preset.Arrivals)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Policy:   PolicyULLAffinity,
		Seed:     42,
		Fallback: faas.FallbackConfig{Enabled: true},
		Shards:   shards,
	}
	opts.Specs = make([]NodeSpec, 8)
	for i := range opts.Specs {
		if i < 2 {
			opts.Specs[i].ULLSlots = 2
		}
	}
	if opts.Faults, err = faultinject.New(42, faultinject.Rule{Site: faultinject.SiteNodeFail, Nth: 200}); err != nil {
		t.Fatal(err)
	}
	if tenancy {
		if opts.Tenants, err = tenant.ParseSpecs(preset.Tenants); err != nil {
			t.Fatal(err)
		}
		opts.ULLAdmitRate = preset.ULLAdmitRate
	} else {
		for i := range ws {
			ws[i].Tenant = ""
		}
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	registerNAT(t, c)
	// Bind before provisioning (mirroring the CLI) so the slot clamp
	// governs the pools from the first ScaleCluster.
	for _, w := range ws {
		if err := c.BindTenant(w.Function, w.Tenant); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.ScaleCluster("scan", 3, core.Horse); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScaleCluster("nat", 1, core.Horse); err != nil {
		t.Fatal(err)
	}
	report, err := c.Run(RunConfig{
		Workloads: ws,
		Horizon:   200 * simtime.Millisecond,
		Payloads:  map[string][]byte{"scan": scanPayload(t), "nat": natPayload(t)},
		// The steady tenant's scan budget is tight (5 µs: hot path plus
		// a little queueing) so the greedy bursts spilling onto its node
		// actually violate it — the regression the gate must prevent.
		SLO: map[string]simtime.Duration{"scan": 5 * simtime.Microsecond, "nat": DefaultULLBudget},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trigtrace.WritePerfetto(&buf, c.Trace().Traces()); err != nil {
		t.Fatal(err)
	}
	return report, buf.Bytes()
}

func tenantSummary(t *testing.T, r Report, name string) TenantSummary {
	t.Helper()
	for _, ts := range r.Tenants {
		if ts.Tenant == name {
			return ts
		}
	}
	t.Fatalf("tenant %q missing from report (have %d tenants)", name, len(r.Tenants))
	return TenantSummary{}
}

// TestAdversarialTenantFairness is the seeded fairness regression
// (DESIGN.md §14): under the adversarial mix plus a node failure, the
// weighted-fair admission gate must hold the steady tenant's uLL SLO
// attainment at ≥ 0.9 and strictly above the no-tenancy baseline, and
// every admission reject must be charged to the greedy tenant.
func TestAdversarialTenantFairness(t *testing.T) {
	fair, _ := adversarialRun(t, 1, true)
	baseline, _ := adversarialRun(t, 1, false)

	steady := tenantSummary(t, fair, "steady")
	greedy := tenantSummary(t, fair, "greedy")
	if steady.Arrivals == 0 || greedy.Arrivals == 0 {
		t.Fatalf("scenario generated no traffic: steady %d, greedy %d", steady.Arrivals, greedy.Arrivals)
	}

	steadyAttainment := attainment(steady.Missed, steady.Arrivals)
	if steadyAttainment < 0.9 {
		t.Errorf("steady tenant attainment %.4f under fair sharing, want >= 0.9", steadyAttainment)
	}

	// Baseline: same traffic, no contract — the scan function's SLO
	// attainment is the steady tenant's outcome without isolation.
	var baseScan SLOSummary
	for _, s := range baseline.SLOs {
		if s.Function == "scan" {
			baseScan = s
		}
	}
	if baseScan.Arrivals == 0 {
		t.Fatal("baseline run has no scan traffic")
	}
	if steadyAttainment <= baseScan.Attainment {
		t.Errorf("fair sharing did not help: steady attainment %.4f vs baseline %.4f",
			steadyAttainment, baseScan.Attainment)
	}

	if greedy.AdmissionRejected == 0 {
		t.Error("greedy tenant was never admission-rejected; the gate is not biting")
	}
	if steady.AdmissionRejected != 0 {
		t.Errorf("steady tenant took %d admission rejects; they must be charged to the greedy tenant",
			steady.AdmissionRejected)
	}
	var admissionCount uint64
	for _, rr := range fair.RejectionReasons {
		if rr.Reason == RejectReasonAdmission {
			admissionCount = rr.Count
		}
	}
	if admissionCount != greedy.AdmissionRejected+steady.AdmissionRejected {
		t.Errorf("rejection breakdown admission=%d does not match tenant charges %d+%d",
			admissionCount, greedy.AdmissionRejected, steady.AdmissionRejected)
	}
	if baseline.Tenants != nil {
		t.Error("no-tenancy baseline report carries a tenant section")
	}

	// Slot accounting: the two contracts split the surviving uLL
	// capacity — scan's pool on the up node counts against steady, and
	// the physical per-node slot cap means holdings can never exceed
	// the live capacity.
	if steady.SlotsHeld+greedy.SlotsHeld > steady.Entitlement+greedy.Entitlement {
		t.Errorf("tenants hold %d+%d slots, above the %d+%d entitlements",
			steady.SlotsHeld, greedy.SlotsHeld, steady.Entitlement, greedy.Entitlement)
	}
}

// TestTenancyDeterministicAcrossShardCounts extends the §13 matrix to
// tenancy: the tenancy-enabled adversarial scenario must render a
// byte-identical report (JSON, CSV, Perfetto) at shard counts 1, 2,
// and 8 — admission runs at the pump, on the coordinator, in arrival
// order, so sharding cannot move a single admission decision.
func TestTenancyDeterministicAcrossShardCounts(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	baseline, want := adversarialRun(t, 1, true)
	if len(baseline.Tenants) != 2 {
		t.Fatalf("report has %d tenants, want 2", len(baseline.Tenants))
	}
	for _, shards := range []int{2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			testutil.VerifyNoLeaks(t)
			if _, got := adversarialRun(t, shards, true); !bytes.Equal(got, want) {
				t.Fatalf("shards=%d produced different bytes than the sequential run (%d vs %d bytes)",
					shards, len(got), len(want))
			}
		})
	}
}

// TestBindTenant covers the binding contract: unknown functions and
// tenants are rejected, rebinding to a different tenant is rejected,
// rebinding to the same tenant and the empty name are no-ops.
func TestBindTenant(t *testing.T) {
	specs := []NodeSpec{{ULLSlots: 2}, {}}
	c, err := New(Options{
		Specs:   specs,
		Seed:    1,
		Tenants: []tenant.Spec{{Name: "acme"}, {Name: "umbrella"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	if err := c.BindTenant("scan", "acme"); err != nil {
		t.Fatal(err)
	}
	if err := c.BindTenant("scan", "acme"); err != nil {
		t.Fatalf("same-tenant rebind should be a no-op, got %v", err)
	}
	if err := c.BindTenant("scan", ""); err != nil {
		t.Fatalf("empty tenant name should be a no-op, got %v", err)
	}
	if err := c.BindTenant("scan", "umbrella"); err == nil {
		t.Fatal("cross-tenant rebind must fail")
	}
	if err := c.BindTenant("scan", "nope"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant = %v, want ErrUnknownTenant", err)
	}
	if err := c.BindTenant("ghost", "acme"); !errors.Is(err, faas.ErrUnknownFunction) {
		t.Fatalf("unknown function = %v, want ErrUnknownFunction", err)
	}

	// Without a contract, any non-empty tenant name is unknown and the
	// error says why.
	bare, err := New(Options{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, bare, faas.SandboxSpec{})
	err = bare.BindTenant("scan", "acme")
	if !errors.Is(err, ErrUnknownTenant) || !strings.Contains(err.Error(), "no tenant contract") {
		t.Fatalf("bind without contract = %v, want ErrUnknownTenant mentioning the missing contract", err)
	}
}

// TestTenantSlotClampAndReclaim covers the weighted-fair slot ledger:
// a tenant may borrow idle capacity beyond its entitlement, a tenant
// scaling within its entitlement reclaims borrowed holdings, and
// holdings at or below the entitlement are preemption-protected.
func TestTenantSlotClampAndReclaim(t *testing.T) {
	// 4 reserved slots, split 3:1 between acme and bold.
	c, err := New(Options{
		Specs: []NodeSpec{{ULLSlots: 2}, {ULLSlots: 2}, {}},
		Seed:  1,
		Tenants: []tenant.Spec{
			{Name: "acme", Weight: 3, Slots: 3},
			{Name: "bold", Weight: 1, Slots: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	registerNAT(t, c)
	if err := c.BindTenant("scan", "acme"); err != nil {
		t.Fatal(err)
	}
	if err := c.BindTenant("nat", "bold"); err != nil {
		t.Fatal(err)
	}

	// bold's entitlement is 1, but acme is idle: bold may borrow up to
	// the whole free capacity.
	placed, err := c.ScaleCluster("nat", 4, core.Horse)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 4 {
		t.Fatalf("bold borrowed %d slots with the cluster idle, want 4", placed)
	}

	// acme scales within its entitlement: the clamp must reclaim the
	// borrowed slots from bold rather than refuse.
	placed, err = c.ScaleCluster("scan", 3, core.Horse)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 3 {
		t.Fatalf("acme placed %d slots inside its entitlement of 3, want 3", placed)
	}
	if held := c.tenantHorseHeld(mustTenant(t, c, "bold")); held != 1 {
		t.Fatalf("bold holds %d slots after reclaim, want 1 (its entitlement)", held)
	}

	// bold is now at its entitlement: acme cannot take that last slot
	// even though it asks for more than it holds.
	placed, err = c.ScaleCluster("scan", 4, core.Horse)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 3 {
		t.Fatalf("acme placed %d slots, want 3 — bold's entitled slot is preemption-protected", placed)
	}
}

// TestTenantMemoryQuota covers the memory side of the contract: a
// tenant's pools across all policies stay inside its MemoryMB.
func TestTenantMemoryQuota(t *testing.T) {
	c, err := New(Options{
		Specs:   []NodeSpec{{ULLSlots: 4}, {}},
		Seed:    1,
		Tenants: []tenant.Spec{{Name: "acme", MemoryMB: 384}},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{VCPUs: 1, MemoryMB: 128})
	if err := c.BindTenant("scan", "acme"); err != nil {
		t.Fatal(err)
	}
	// 384 MB quota at 128 MB per sandbox = 3 entries, despite asking
	// for 6 and the nodes having room for them.
	placed, err := c.ScaleCluster("scan", 6, core.Vanilla)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 3 {
		t.Fatalf("placed %d vanilla entries, want 3 (384 MB quota / 128 MB)", placed)
	}
	// The quota spans policies: the vanilla pool leaves no room for
	// HORSE entries.
	placed, err = c.ScaleCluster("scan", 2, core.Horse)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 0 {
		t.Fatalf("placed %d HORSE entries over quota, want 0", placed)
	}
}

func mustTenant(t *testing.T, c *Cluster, name string) int {
	t.Helper()
	idx, ok := c.Tenants().Lookup(name)
	if !ok {
		t.Fatalf("tenant %q not found", name)
	}
	return idx
}

// TestTriggerAdmissionGate covers the direct Trigger path: a
// rate-limited tenant's triggers are rejected with ErrAdmissionRejected
// once the bucket drains, and the reject consumes no placement.
func TestTriggerAdmissionGate(t *testing.T) {
	c, err := New(Options{
		Specs:   []NodeSpec{{ULLSlots: 2}},
		Seed:    1,
		Tenants: []tenant.Spec{{Name: "acme", Rate: 1000, Burst: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	if err := c.BindTenant("scan", "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScaleCluster("scan", 2, core.Horse); err != nil {
		t.Fatal(err)
	}
	payload := scanPayload(t)
	served := 0
	var rejected uint64
	for i := 0; i < 5; i++ {
		_, _, err := c.Trigger("scan", faas.ModeHorse, payload)
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrAdmissionRejected):
			rejected++
			if !strings.Contains(err.Error(), `"acme"`) || !strings.Contains(err.Error(), "rate") {
				t.Errorf("admission error %q does not name the tenant and the gate", err)
			}
		default:
			t.Fatal(err)
		}
	}
	if served != 2 || rejected != 3 {
		t.Fatalf("burst of 5 at burst-capacity 2: served %d, rejected %d; want 2 and 3", served, rejected)
	}
	if got := c.Rejected(); got != rejected {
		t.Errorf("cluster rejected counter = %d, want %d", got, rejected)
	}
}
