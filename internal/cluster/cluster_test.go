package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/faultinject"
	"github.com/horse-faas/horse/internal/loadgen"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/telemetry"
	"github.com/horse-faas/horse/internal/testutil"
	"github.com/horse-faas/horse/internal/workload"
)

func scanPayload(t *testing.T) []byte {
	t.Helper()
	payload, err := json.Marshal(workload.ScanRequest{Threshold: 5000})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// registerScan deploys the Category-3 scan on every node.
func registerScan(t *testing.T, c *Cluster, spec faas.SandboxSpec) {
	t.Helper()
	if spec.VCPUs == 0 {
		spec = faas.SandboxSpec{VCPUs: 1, MemoryMB: 128}
	}
	if err := c.RegisterEverywhere(workload.NewScan(1), spec); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterEverywhere(t *testing.T) {
	c := testCluster(t, PolicyRoundRobin, NodeSpec{}, NodeSpec{})
	registerScan(t, c, faas.SandboxSpec{})
	for _, n := range c.Nodes() {
		if _, err := n.Platform().Deployment("scan"); err != nil {
			t.Fatalf("scan missing on %s: %v", n.ID(), err)
		}
	}
	if err := c.RegisterEverywhere(workload.NewScan(1), faas.SandboxSpec{VCPUs: 1, MemoryMB: 128}); !errors.Is(err, faas.ErrAlreadyDeployed) {
		t.Fatalf("duplicate register = %v, want ErrAlreadyDeployed", err)
	}
}

func TestScaleClusterConfinesHorsePoolsToReservedNodes(t *testing.T) {
	c := testCluster(t, PolicyULLAffinity,
		NodeSpec{ULLSlots: 1}, NodeSpec{ULLSlots: 2}, NodeSpec{})
	registerScan(t, c, faas.SandboxSpec{})
	placed, err := c.ScaleCluster("scan", 10, core.Horse)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 3 {
		t.Fatalf("placed %d HORSE sandboxes, want 3 (ULLSlots sum)", placed)
	}
	want := []int{1, 2, 0}
	for i, n := range c.Nodes() {
		if got := n.poolCount("scan", core.Horse); got != want[i] {
			t.Errorf("%s HORSE pool = %d, want %d", n.ID(), got, want[i])
		}
	}
}

func TestScaleClusterAdmitsAgainstNodeMemory(t *testing.T) {
	c := testCluster(t, PolicyRoundRobin, NodeSpec{MemoryMB: 256})
	registerScan(t, c, faas.SandboxSpec{VCPUs: 1, MemoryMB: 128})
	placed, err := c.ScaleCluster("scan", 10, core.Vanilla)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 2 {
		t.Fatalf("placed %d sandboxes on a 256MB node with 128MB sandboxes, want 2", placed)
	}
	// Rescaling to the same total must be a no-op, not double-count the
	// entries it is replacing.
	placed, err = c.ScaleCluster("scan", 2, core.Vanilla)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 2 {
		t.Fatalf("rescale placed %d, want 2", placed)
	}
}

func TestTriggerServesAndTracksPlacement(t *testing.T) {
	c := testCluster(t, PolicyRoundRobin, NodeSpec{ULLSlots: 1}, NodeSpec{ULLSlots: 1})
	registerScan(t, c, faas.SandboxSpec{})
	if _, err := c.ScaleCluster("scan", 2, core.Horse); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	inv, placement, err := c.Trigger("scan", faas.ModeHorse, scanPayload(t))
	if err != nil {
		t.Fatal(err)
	}
	if inv.Mode != faas.ModeHorse {
		t.Fatalf("served mode %v, want horse", inv.Mode)
	}
	if placement.Node != "node00" || placement.Failovers != 0 || placement.Wait != 0 {
		t.Fatalf("placement = %+v, want node00 with no failovers and no wait", placement)
	}
	if placement.Latency != inv.Total() {
		t.Fatalf("latency %v != init+exec %v on an idle node", placement.Latency, inv.Total())
	}
	if c.Nodes()[0].Served() != 1 || c.Nodes()[0].Placements() != 1 {
		t.Fatalf("node00 counters served=%d placements=%d, want 1/1", c.Nodes()[0].Served(), c.Nodes()[0].Placements())
	}
}

func TestTriggerQueueingAddsWait(t *testing.T) {
	c := testCluster(t, PolicyRoundRobin, NodeSpec{})
	if err := c.RegisterEverywhere(workload.NewThumbnail(), faas.SandboxSpec{VCPUs: 1, MemoryMB: 512}); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(workload.ThumbnailRequest{Object: "photos/a.jpg", Width: 256, Height: 256, Edge: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, first, err := c.Trigger("thumbnail", faas.ModeCold, payload)
	if err != nil {
		t.Fatal(err)
	}
	if first.Wait != 0 {
		t.Fatalf("first trigger waited %v on an idle node", first.Wait)
	}
	// The cluster clock has not advanced, so the node's backlog is the
	// whole first invocation; the second trigger queues behind it.
	_, second, err := c.Trigger("thumbnail", faas.ModeCold, payload)
	if err != nil {
		t.Fatal(err)
	}
	// The backlog is the first invocation plus its re-pool housekeeping,
	// so the wait is at least the first latency (and within 1µs of it).
	if second.Wait < first.Latency || second.Wait > first.Latency+simtime.Microsecond {
		t.Fatalf("second trigger wait %v, want ≈ the first trigger's latency %v", second.Wait, first.Latency)
	}
	if second.Latency <= second.Wait {
		t.Fatalf("second trigger latency %v does not include its service time beyond wait %v", second.Latency, second.Wait)
	}
}

func TestTriggerFailsOverWhenNodeLacksCapacity(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	c := testCluster(t, PolicyRoundRobin, NodeSpec{ULLSlots: 1}, NodeSpec{ULLSlots: 1})
	registerScan(t, c, faas.SandboxSpec{})
	// Arm only node01: round-robin's first pick (node00) has no HORSE
	// pool and no fallback, so the trigger must fail over.
	if err := c.Nodes()[1].Platform().Provision("scan", 1, core.Horse); err != nil {
		t.Fatal(err)
	}
	_, placement, err := c.Trigger("scan", faas.ModeHorse, scanPayload(t))
	if err != nil {
		t.Fatal(err)
	}
	if placement.Node != "node01" || placement.Failovers != 1 {
		t.Fatalf("placement = %+v, want node01 after one failover", placement)
	}
	if got := c.FailoversByReason()[ReasonTriggerFailed]; got != 1 {
		t.Fatalf("trigger-failed failovers = %d, want 1", got)
	}
}

func TestInvokeFailureIsNotRetriedElsewhere(t *testing.T) {
	faults, err := faultinject.New(1, faultinject.Rule{Site: faultinject.SiteInvoke, Nth: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Nodes: 2, Spec: NodeSpec{ULLSlots: 1}, Policy: PolicyRoundRobin, Seed: 1, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	if _, err := c.ScaleCluster("scan", 2, core.Horse); err != nil {
		t.Fatal(err)
	}
	_, _, terr := c.Trigger("scan", faas.ModeHorse, scanPayload(t))
	if !errors.Is(terr, ErrInvokeNotRetried) {
		t.Fatalf("invoke-failure trigger = %v, want ErrInvokeNotRetried", terr)
	}
	if c.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", c.Failed())
	}
	if n := c.Failovers(); n != 0 {
		t.Fatalf("invocation failure caused %d failovers; user code must not be double-executed", n)
	}
}

func TestTriggerDuringDrainRehomesAndFailsOver(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	faults, err := faultinject.New(7, faultinject.Rule{Site: faultinject.SiteNodeDrain, Nth: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{
		Specs:  []NodeSpec{{ULLSlots: 2}, {ULLSlots: 2}, {ULLSlots: 2}},
		Policy: PolicyRoundRobin, Seed: 1, Faults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	if _, err := c.ScaleCluster("scan", 3, core.Horse); err != nil {
		t.Fatal(err)
	}
	payload := scanPayload(t)
	if _, p, err := c.Trigger("scan", faas.ModeHorse, payload); err != nil || p.Node != "node00" {
		t.Fatalf("first trigger placement %+v, err %v", p, err)
	}
	// The second routing decision picks node01 and the armed drain fires
	// mid-trigger: the trigger must land elsewhere and node01's HORSE
	// capacity must re-home onto the survivors.
	_, p, err := c.Trigger("scan", faas.ModeHorse, payload)
	if err != nil {
		t.Fatal(err)
	}
	if p.Node == "node01" || p.Failovers != 1 {
		t.Fatalf("trigger-during-drain placement = %+v, want one failover away from node01", p)
	}
	if got := c.FailoversByReason()[ReasonNodeDraining]; got != 1 {
		t.Fatalf("node-draining failovers = %d, want 1", got)
	}
	drained, err := c.node("node01")
	if err != nil {
		t.Fatal(err)
	}
	if drained.Health() != Draining {
		t.Fatalf("node01 health = %v, want draining", drained.Health())
	}
	if got := drained.poolCount("scan", core.Horse); got != 0 {
		t.Fatalf("drained node still holds %d HORSE sandboxes", got)
	}
	if got := c.poolTotal("scan", core.Horse); got != 3 {
		t.Fatalf("cluster HORSE capacity after re-home = %d, want 3", got)
	}
	// Draining is sticky: no later trigger may land there.
	for i := 0; i < 6; i++ {
		_, p, err := c.Trigger("scan", faas.ModeHorse, payload)
		if err != nil {
			t.Fatal(err)
		}
		if p.Node == "node01" {
			t.Fatal("trigger placed on draining node")
		}
	}
	if c.RehomeFailures() != 0 {
		t.Fatalf("re-home failures = %d, want 0", c.RehomeFailures())
	}
}

func TestAllNodesFailedRejectsTrigger(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	faults, err := faultinject.New(3, faultinject.Rule{Site: faultinject.SiteNodeFail, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Nodes: 2, Spec: NodeSpec{ULLSlots: 1}, Policy: PolicyLeastLoaded, Seed: 1, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	if _, err := c.ScaleCluster("scan", 2, core.Horse); err != nil {
		t.Fatal(err)
	}
	_, placement, terr := c.Trigger("scan", faas.ModeHorse, scanPayload(t))
	if !errors.Is(terr, ErrNoNodes) {
		t.Fatalf("trigger on all-failing cluster = %v, want ErrNoNodes", terr)
	}
	if placement.NodeIndex != -1 || placement.Failovers != 2 {
		t.Fatalf("placement = %+v, want rejection after 2 failovers", placement)
	}
	if c.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", c.Rejected())
	}
	if got := c.FailoversByReason()[ReasonNodeFailed]; got != 2 {
		t.Fatalf("node-failed failovers = %d, want 2", got)
	}
	for _, n := range c.Nodes() {
		if n.Health() != Failed {
			t.Fatalf("%s health = %v, want failed", n.ID(), n.Health())
		}
	}
	// The cluster stays rejecting — and stays deterministic — afterward.
	if _, _, terr := c.Trigger("scan", faas.ModeHorse, scanPayload(t)); !errors.Is(terr, ErrNoNodes) {
		t.Fatalf("second trigger = %v, want ErrNoNodes", terr)
	}
}

func TestRebalanceAfterReapRestoresSpread(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	c := testCluster(t, PolicyRoundRobin, NodeSpec{}, NodeSpec{})
	registerScan(t, c, faas.SandboxSpec{VCPUs: 1, MemoryMB: 128, KeepAlive: simtime.Millisecond})
	if _, err := c.ScaleCluster("scan", 4, core.Vanilla); err != nil {
		t.Fatal(err)
	}
	// node00's local clock runs ahead past the keep-alive window, so the
	// reaper destroys its pool while node01's stays warm.
	c.Nodes()[0].Platform().Clock().Advance(2 * simtime.Millisecond)
	reaped, err := c.Reap()
	if err != nil {
		t.Fatal(err)
	}
	if reaped != 2 {
		t.Fatalf("reaped %d, want 2 (node00's idle pool)", reaped)
	}
	if got := c.poolTotal("scan", core.Vanilla); got != 2 {
		t.Fatalf("pool total after reap = %d, want 2", got)
	}
	// Rebalance must spread the surviving capacity back out, shrinking
	// node01 and re-provisioning node00 — the interleaving that used to
	// be impossible to express on one node.
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if got := n.poolCount("scan", core.Vanilla); got != 1 {
			t.Fatalf("%s pool after rebalance = %d, want 1", n.ID(), got)
		}
	}
	// An immediate second reap finds nothing idle: the rebalanced
	// entries are freshly paused.
	reaped, err = c.Reap()
	if err != nil {
		t.Fatal(err)
	}
	if reaped != 0 {
		t.Fatalf("second reap destroyed %d fresh sandboxes", reaped)
	}
}

func TestDrainRequiresUpNode(t *testing.T) {
	c := testCluster(t, PolicyRoundRobin, NodeSpec{}, NodeSpec{})
	if err := c.Fail("node00"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain("node00"); !errors.Is(err, ErrNodeNotUp) {
		t.Fatalf("drain of failed node = %v, want ErrNodeNotUp", err)
	}
	if err := c.Drain("node99"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("drain of unknown node = %v, want ErrUnknownNode", err)
	}
}

// runScanCluster builds a fresh cluster under the given policy and
// fault spec, provisions HORSE pools on the reserved nodes, and runs
// the standard regression workload.
func runScanCluster(t *testing.T, policy string, seed int64, faultRules []faultinject.Rule, metrics *telemetry.Registry) Report {
	t.Helper()
	var faults *faultinject.Injector
	if len(faultRules) > 0 {
		var err error
		faults, err = faultinject.New(seed, faultRules...)
		if err != nil {
			t.Fatal(err)
		}
	}
	specs := make([]NodeSpec, 8)
	for i := range specs {
		if i < 2 {
			specs[i].ULLSlots = 2
		}
	}
	c, err := New(Options{
		Specs:    specs,
		Policy:   policy,
		Seed:     seed,
		Faults:   faults,
		Metrics:  metrics,
		Fallback: faas.FallbackConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	if _, err := c.ScaleCluster("scan", 4, core.Horse); err != nil {
		t.Fatal(err)
	}
	ws, err := loadgen.ParseWorkloads("scan=poisson:rate=1000/s,mode=horse")
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run(RunConfig{
		Workloads: ws,
		Horizon:   200 * simtime.Millisecond,
		Payloads:  map[string][]byte{"scan": scanPayload(t)},
		SLO:       map[string]simtime.Duration{"scan": 1500 * simtime.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestULLAffinityBeatsRoundRobinUnderNodeFailure is the checked-in SLO
// regression: on a seeded run with a node failure mid-stream, the
// ull-affinity policy must show nonzero failovers and strictly better
// uLL SLO attainment than round-robin, because round-robin keeps
// steering HORSE triggers onto nodes with no HORSE pools, degrading
// them to warm/restore starts that blow the µs-scale budget.
func TestULLAffinityBeatsRoundRobinUnderNodeFailure(t *testing.T) {
	rules := []faultinject.Rule{{Site: faultinject.SiteNodeFail, Nth: 20}}
	affinity := runScanCluster(t, PolicyULLAffinity, 42, rules, nil)
	roundRobin := runScanCluster(t, PolicyRoundRobin, 42, rules, nil)
	if affinity.Failovers == 0 {
		t.Fatal("ull-affinity run recorded no failovers despite the armed node failure")
	}
	if roundRobin.Failovers == 0 {
		t.Fatal("round-robin run recorded no failovers despite the armed node failure")
	}
	if affinity.Arrivals == 0 || affinity.Arrivals != roundRobin.Arrivals {
		t.Fatalf("arrival streams diverged: %d vs %d", affinity.Arrivals, roundRobin.Arrivals)
	}
	if !(affinity.ULLAttainment > roundRobin.ULLAttainment) {
		t.Fatalf("uLL attainment: ull-affinity %.4f must be strictly better than round-robin %.4f",
			affinity.ULLAttainment, roundRobin.ULLAttainment)
	}
	if affinity.ULLAttainment < 0.9 {
		t.Fatalf("ull-affinity attainment %.4f, want ≥0.9 with reserved HORSE capacity", affinity.ULLAttainment)
	}
}

func TestRunReportIsByteIdenticalAcrossRuns(t *testing.T) {
	rules := []faultinject.Rule{{Site: faultinject.SiteNodeFail, Nth: 30}}
	render := func(seed int64) (string, string) {
		report := runScanCluster(t, PolicyULLAffinity, seed, rules, nil)
		var csv, js bytes.Buffer
		if err := report.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := report.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return csv.String(), js.String()
	}
	csv1, js1 := render(42)
	csv2, js2 := render(42)
	if csv1 != csv2 {
		t.Fatalf("same seed produced different CSV reports:\n--- a\n%s\n--- b\n%s", csv1, csv2)
	}
	if js1 != js2 {
		t.Fatal("same seed produced different JSON reports")
	}
	csv3, _ := render(43)
	if csv1 == csv3 {
		t.Fatal("different seeds produced identical CSV reports")
	}
}

func TestRunMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	report := runScanCluster(t, PolicyULLAffinity, 42, nil, reg)
	if got := reg.Counter("loadgen_arrivals_total", "function", "scan").Value(); got != report.Arrivals {
		t.Errorf("loadgen_arrivals_total = %d, want %d", got, report.Arrivals)
	}
	var triggers uint64
	for i := 0; i < 8; i++ {
		id := []string{"node00", "node01", "node02", "node03", "node04", "node05", "node06", "node07"}[i]
		triggers += reg.Counter("cluster_triggers_total", "node", id, "policy", PolicyULLAffinity).Value()
	}
	if triggers != report.Served {
		t.Errorf("cluster_triggers_total sum = %d, want served %d", triggers, report.Served)
	}
	if report.Served == 0 {
		t.Fatal("no triggers served")
	}
}

func TestRunRejectsUnregisteredWorkload(t *testing.T) {
	c := testCluster(t, PolicyRoundRobin, NodeSpec{})
	ws, err := loadgen.ParseWorkloads("ghost=poisson:rate=10/s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(RunConfig{Workloads: ws, Horizon: simtime.Millisecond}); err == nil {
		t.Fatal("Run accepted a workload for an unregistered function")
	}
}
