package cluster

import (
	"fmt"
	"sort"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/eventsim"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/telemetry"
)

// Health is a node's lifecycle state.
type Health int

// The node health states. Transitions only move toward the grave: an Up
// node can drain or fail, a Draining node can fail; nothing recovers
// (bringing capacity back is ScaleCluster's job on the surviving
// nodes — a production recovery path is a named ROADMAP follow-up).
const (
	// Up nodes accept new triggers and cluster-level pool operations.
	Up Health = iota
	// Draining nodes refuse new triggers; their warm capacity has been
	// re-homed onto the surviving nodes by Drain.
	Draining
	// Failed nodes are gone: pools lost, triggers failed over.
	Failed
)

// String returns the health state's report name.
func (h Health) String() string {
	switch h {
	case Up:
		return "up"
	case Draining:
		return "draining"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// NodeSpec sizes one node.
type NodeSpec struct {
	// CPUs is the node's general-purpose core count (default 36, the
	// paper's evaluation machine).
	CPUs int
	// MemoryMB is the sandbox-memory capacity cluster-level pool
	// placement admits against (default 16384).
	MemoryMB int
	// ULLSlots is the node's reserved uLL capacity: the number of
	// ull_runqueues its hypervisor reserves and the cap on warm
	// HORSE-armed sandboxes cluster placement will put here. 0 means the
	// node is not uLL-reserved: the ull-affinity policy never pins uLL
	// functions to it and ScaleCluster never places HORSE pools on it.
	ULLSlots int
}

// Defaults for the zero NodeSpec.
const (
	DefaultNodeCPUs     = 36
	DefaultNodeMemoryMB = 16384
)

func (s NodeSpec) withDefaults() NodeSpec {
	if s.CPUs == 0 {
		s.CPUs = DefaultNodeCPUs
	}
	if s.MemoryMB == 0 {
		s.MemoryMB = DefaultNodeMemoryMB
	}
	return s
}

// Node is one cluster member: a faas.Platform plus the capacity and
// health bookkeeping the router places against.
//
// Each node runs on its own local virtual clock, synchronized forward
// to the cluster clock before serving a trigger. A node whose local
// clock is ahead of the cluster clock has backlog — virtual work
// already committed but not yet caught up with by cluster time — and
// that lag is the node's load score (DESIGN.md §11).
type Node struct {
	id       string
	index    int
	spec     NodeSpec
	platform *faas.Platform //horselint:shardlocal
	health   Health         //horselint:coordinator

	// engine is the node-local discrete-event engine of the
	// conservative-PDES run loop (DESIGN.md §13). It shares the
	// platform's local clock, so draining it advances exactly the clock
	// the node's lag is measured from. The coordinator schedules routed
	// triggers here between barriers; during a serve barrier only the
	// node's own shard touches it.
	//
	//horselint:shardlocal
	engine *eventsim.Engine

	// placements counts routing decisions that picked this node (the
	// router charges it on the coordinator); served counts triggers that
	// completed here (the serving shard charges it). The difference is
	// picks that failed over elsewhere.
	placements uint64 //horselint:coordinator
	served     uint64 //horselint:shardlocal

	// triggers and load are the node's per-trigger instruments, prebound
	// at cluster construction so the trigger hot path skips the
	// registry's name-format + map-lookup cost (nil registry ⇒ nil
	// handles, inert).
	triggers *telemetry.Counter
	load     *telemetry.Gauge
}

// ID returns the node's stable identifier ("node00", "node01", …).
func (n *Node) ID() string { return n.id }

// Index returns the node's position in the cluster's node list.
func (n *Node) Index() int { return n.index }

// Spec returns the node's capacity spec (defaults applied).
func (n *Node) Spec() NodeSpec { return n.spec }

// Platform returns the node's FaaS platform.
func (n *Node) Platform() *faas.Platform { return n.platform }

// Health returns the node's lifecycle state.
func (n *Node) Health() Health { return n.health }

// ULLReserved reports whether the node reserves uLL capacity.
func (n *Node) ULLReserved() bool { return n.spec.ULLSlots > 0 }

// Placements returns how many routing decisions picked this node.
func (n *Node) Placements() uint64 { return n.placements }

// Served returns how many triggers completed on this node.
func (n *Node) Served() uint64 { return n.served }

// Lag is the node's load score: how far its local clock runs ahead of
// the cluster instant now — the virtual-time backlog a new trigger
// would wait behind. A node that has never served is at the epoch and
// reports zero. Lag is read on both sides of the barrier — the router
// scores nodes with it between barriers, and the serving shard samples
// it for the load gauge — which is safe because it derives from the
// node's own clock, never from coordinator-owned state.
//
//horselint:hotpath
//horselint:shardphase
func (n *Node) Lag(now simtime.Time) simtime.Duration {
	local := n.platform.Clock().Now()
	if local.After(now) {
		return local.Sub(now)
	}
	return 0
}

// committedMB returns the node's live sandbox-memory commitment: the
// sum over deployments of the platform's own pool attribution
// (PoolStats.CommittedMB). It is computed from the pools rather than
// kept as a ledger so reaping, destroy failures, and pool churn inside
// the platform can never make the admission check drift.
func (n *Node) committedMB(c *Cluster) int {
	names := make([]string, 0, len(c.deployments))
	for name := range c.deployments {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0
	for _, name := range names {
		stats, err := n.platform.PoolStats(name)
		if err != nil {
			// The deployment is registered on every node by construction;
			// a lookup failure means it was never registered here, which
			// commits nothing.
			continue
		}
		total += stats.CommittedMB
	}
	return total
}

// poolCount returns the node's warm-pool entries for one deployment and
// policy (0 when the deployment is unknown here).
func (n *Node) poolCount(name string, policy core.Policy) int {
	stats, err := n.platform.PoolStats(name)
	if err != nil {
		return 0
	}
	return stats.ByPolicy[policy]
}

// horseOccupied returns the node's HORSE pool entries held by every
// deployment except the named one — the reserved uLL slots already
// spoken for when that deployment scales here.
func (n *Node) horseOccupied(c *Cluster, except string) int {
	total := 0
	for name := range c.deployments {
		if name == except {
			continue
		}
		total += n.poolCount(name, core.Horse)
	}
	return total
}
