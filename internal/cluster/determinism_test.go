package cluster

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/faultinject"
	"github.com/horse-faas/horse/internal/loadgen"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/testutil"
	"github.com/horse-faas/horse/internal/trigtrace"
)

// matrixRun builds the 8-node regression topology with the given shard
// count, runs the standard seeded workload with a mid-stream node
// failure, and returns the cluster plus the rendered report (JSON and
// CSV) and Perfetto export — the full byte surface the determinism
// matrix compares.
func matrixRun(t *testing.T, shards int) (Report, []byte) {
	t.Helper()
	faults, err := faultinject.New(42, faultinject.Rule{Site: faultinject.SiteNodeFail, Nth: 20})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]NodeSpec, 8)
	for i := range specs {
		if i < 2 {
			specs[i].ULLSlots = 2
		}
	}
	c, err := New(Options{
		Specs:    specs,
		Policy:   PolicyULLAffinity,
		Seed:     42,
		Faults:   faults,
		Fallback: faas.FallbackConfig{Enabled: true},
		Shards:   shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerScan(t, c, faas.SandboxSpec{})
	if _, err := c.ScaleCluster("scan", 4, core.Horse); err != nil {
		t.Fatal(err)
	}
	ws, err := loadgen.ParseWorkloads("scan=poisson:rate=2000/s,mode=horse")
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run(RunConfig{
		Workloads: ws,
		Horizon:   200 * simtime.Millisecond,
		Payloads:  map[string][]byte{"scan": scanPayload(t)},
		SLO:       map[string]simtime.Duration{"scan": 1500 * simtime.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trigtrace.WritePerfetto(&buf, c.Trace().Traces()); err != nil {
		t.Fatal(err)
	}
	return report, buf.Bytes()
}

// TestRunDeterministicAcrossShardCounts is the conservative-PDES
// determinism matrix (DESIGN.md §13): the same seeded experiment must
// produce a byte-identical report, CSV, and Perfetto export at every
// shard count — sequential inline, two shards, an uneven node/shard
// split, and one goroutine per node — and under GOMAXPROCS=1, where
// the Go scheduler can never actually run two shards at once. Sharding
// may only change wall-clock time, never a single simulated byte.
func TestRunDeterministicAcrossShardCounts(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	baseline, want := matrixRun(t, 1)
	if baseline.Arrivals == 0 || baseline.Failovers == 0 {
		t.Fatalf("baseline run is not exercising the failover path: %d arrivals, %d failovers",
			baseline.Arrivals, baseline.Failovers)
	}
	for _, shards := range []int{2, 3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			testutil.VerifyNoLeaks(t)
			if _, got := matrixRun(t, shards); !bytes.Equal(got, want) {
				t.Fatalf("shards=%d produced different bytes than the sequential run (%d vs %d bytes)",
					shards, len(got), len(want))
			}
		})
	}
	t.Run("gomaxprocs-1", func(t *testing.T) {
		testutil.VerifyNoLeaks(t)
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		if _, got := matrixRun(t, 8); !bytes.Equal(got, want) {
			t.Fatal("GOMAXPROCS=1 sharded run diverged from the sequential run")
		}
	})
}

// TestRunTwiceOnOneClusterMatchesFreshCluster is the cross-run
// state-leak regression: before resetRunState, a second Run on the
// same cluster inherited the first run's failover tallies, node
// placement counters, round-robin cursor, and — through the lazily
// armed recorder — its trace aggregates and retained flight traces,
// so the second report double-counted the first experiment. Now a
// second run's report must be byte-identical to a fresh cluster's.
// (Poisson arrivals are translation-invariant, so the later virtual
// start instant of run two cannot perturb the workload; every node is
// uLL-reserved with warm HORSE capacity ahead of the offered load, so
// no trigger degrades to a restore — a restore would leave a warm
// sandbox behind, which is platform capacity deliberately outside the
// per-run reset, like the fault injector's visit counters.)
func TestRunTwiceOnOneClusterMatchesFreshCluster(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	build := func() *Cluster {
		specs := make([]NodeSpec, 2)
		for i := range specs {
			specs[i].ULLSlots = 2
		}
		c, err := New(Options{
			Specs:    specs,
			Policy:   PolicyRoundRobin,
			Seed:     7,
			Fallback: faas.FallbackConfig{Enabled: true},
			Shards:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		registerScan(t, c, faas.SandboxSpec{})
		if _, err := c.ScaleCluster("scan", 4, core.Horse); err != nil {
			t.Fatal(err)
		}
		return c
	}
	ws, err := loadgen.ParseWorkloads("scan=poisson:rate=2000/s,mode=horse")
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Workloads: ws,
		Horizon:   50 * simtime.Millisecond,
		Payloads:  map[string][]byte{"scan": scanPayload(t)},
		SLO:       map[string]simtime.Duration{"scan": 1500 * simtime.Nanosecond},
	}
	render := func(r Report) []byte {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fresh := build()
	want, err := fresh.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reused := build()
	first, err := reused.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(first), render(want)) {
		t.Fatal("first run on the reused cluster already diverges from the fresh cluster")
	}
	second, err := reused.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(second), render(want)) {
		t.Fatalf("second run's report differs from a fresh cluster's:\nfresh:  arrivals=%d served=%d failovers=%d\nsecond: arrivals=%d served=%d failovers=%d",
			want.Arrivals, want.Served, want.Failovers,
			second.Arrivals, second.Served, second.Failovers)
	}
	// The armed recorder must cover exactly the second run, not both.
	if got := reused.Trace().Finished(); got != second.Arrivals {
		t.Fatalf("recorder finished %d traces after run two, want exactly %d (one per arrival)",
			got, second.Arrivals)
	}
	if reused.Failovers() != second.Failovers || reused.Rejected() != second.Rejected {
		t.Fatalf("cluster accessors leak across runs: failovers %d (report %d), rejected %d (report %d)",
			reused.Failovers(), second.Failovers, reused.Rejected(), second.Rejected)
	}
}

// TestRunErrorPathsRecordNoModeOrNode pins the report invariant the
// zero-value-Placement audit closed: a trigger that errors must not
// contribute a served-mode or per-node latency sample, so the mode
// distribution counts sum exactly to Served and no row carries a
// zero-value StartMode label.
func TestRunErrorPathsRecordNoModeOrNode(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// An invoke fault every 10th visit on each node's derived stream
	// yields a steady population of terminal invocation failures.
	rules := []faultinject.Rule{{Site: faultinject.SiteInvoke, Every: 10}}
	report := runScanCluster(t, PolicyRoundRobin, 42, rules, nil)
	if report.Failed == 0 {
		t.Fatal("fault plan produced no failed triggers; the invariant is untested")
	}
	if got := report.Served + report.Rejected + report.Failed; got != report.Arrivals {
		t.Fatalf("served %d + rejected %d + failed %d = %d, want arrivals %d",
			report.Served, report.Rejected, report.Failed, got, report.Arrivals)
	}
	var modeCount, nodeCount uint64
	zeroMode := faas.StartMode(0).String()
	for _, m := range report.Modes {
		if m.Mode == "" || m.Mode == zeroMode {
			t.Fatalf("mode row %+v carries an error-path zero-value label", m)
		}
		modeCount += m.Count
	}
	if modeCount != report.Served {
		t.Fatalf("mode counts sum to %d, want exactly the %d served triggers", modeCount, report.Served)
	}
	for _, n := range report.NodeSummaries {
		nodeCount += n.Served
	}
	if nodeCount != report.Served {
		t.Fatalf("node served counts sum to %d, want %d", nodeCount, report.Served)
	}
}
