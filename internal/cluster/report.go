package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/trigtrace"
)

// Report is the outcome of one cluster run. Every field is a value or a
// sorted slice — no maps — so the JSON and CSV renderings are
// byte-identical for identical runs.
type Report struct {
	// Policy, Seed, and Nodes echo the cluster configuration.
	Policy string `json:"policy"`
	Seed   int64  `json:"seed"`
	Nodes  int    `json:"nodes"`
	// Horizon is the virtual span the arrival stream covered.
	Horizon simtime.Duration `json:"horizon_ns"`
	// Arrivals counts generated triggers; Served the ones that
	// completed; Rejected the ones that found no eligible node; Failed
	// the ones whose invocation died on-node (not retried elsewhere).
	Arrivals uint64 `json:"arrivals"`
	Served   uint64 `json:"served"`
	Rejected uint64 `json:"rejected"`
	Failed   uint64 `json:"failed"`
	// RejectionReasons breaks Rejected down: "no-nodes" (no eligible
	// node) vs "admission" (refused at the tenant admission gate).
	RejectionReasons []ReasonCount `json:"rejection_reasons"`
	// Failovers counts voided routing decisions, broken down by reason.
	Failovers       uint64        `json:"failovers"`
	FailoverReasons []ReasonCount `json:"failover_reasons"`
	// Modes and NodeSummaries give the latency distributions per served
	// start mode and per node.
	Modes         []ModeLatency `json:"modes"`
	NodeSummaries []NodeSummary `json:"node_summaries"`
	// SLOs is the per-function SLO attainment; ULLAttainment is the
	// aggregate over the uLL functions (1 when none saw traffic).
	SLOs          []SLOSummary `json:"slos"`
	ULLAttainment float64      `json:"ull_attainment"`
	// Tenants and TenantModes are the per-tenant accounting (DESIGN.md
	// §14): one summary per tenant in name order, and the per-tenant
	// per-served-mode latency distributions. Empty without a tenant
	// contract.
	Tenants     []TenantSummary     `json:"tenants,omitempty"`
	TenantModes []TenantModeLatency `json:"tenant_modes,omitempty"`
	// Attribution is the tail-latency attribution table: the per-stage
	// latency distribution under each served start mode, from the
	// trigger-trace layer (DESIGN.md §12). Per mode, the serving-class
	// stage totals sum exactly to that mode's summed latency. Empty when
	// tracing was off.
	Attribution []trigtrace.StageLatency `json:"attribution,omitempty"`
	// TraceViolations and TraceReconcileFailures echo the trace
	// recorder: SLO-violating traces retained for the flight recorder,
	// and traces whose stage sums failed to reconcile with their latency
	// (always 0 absent an instrumentation bug).
	TraceViolations        uint64 `json:"trace_violations"`
	TraceReconcileFailures uint64 `json:"trace_reconcile_failures"`
}

// ReasonCount is one failover reason's tally.
type ReasonCount struct {
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// ModeLatency is the arrival-to-completion latency distribution of one
// served start mode.
type ModeLatency struct {
	Mode  string           `json:"mode"`
	Count uint64           `json:"count"`
	P50   simtime.Duration `json:"p50_ns"`
	P95   simtime.Duration `json:"p95_ns"`
	P99   simtime.Duration `json:"p99_ns"`
	Max   simtime.Duration `json:"max_ns"`
}

// NodeSummary is one node's end-of-run state and serving profile.
type NodeSummary struct {
	Node       string           `json:"node"`
	Health     string           `json:"health"`
	Placements uint64           `json:"placements"`
	Served     uint64           `json:"served"`
	Lag        simtime.Duration `json:"lag_ns"`
	P50        simtime.Duration `json:"p50_ns"`
	P99        simtime.Duration `json:"p99_ns"`
}

// TenantSummary is one tenant's end-of-run accounting: what the
// contract granted it (weight, slot entitlement), what it holds
// (SlotsHeld, live from the pools; TokensAvailable, the rate bucket's
// end-of-run level — always 0 for tenants without a rate limit, whose
// bucket is never armed), and what its traffic saw. Rejections are
// split the same way as the cluster's: AdmissionRejected at the tenant
// gate, Rejected for no eligible node.
type TenantSummary struct {
	Tenant            string  `json:"tenant"`
	Weight            int     `json:"weight"`
	Entitlement       int     `json:"entitlement"`
	SlotsHeld         int     `json:"slots_held"`
	Arrivals          uint64  `json:"arrivals"`
	Served            uint64  `json:"served"`
	AdmissionRejected uint64  `json:"admission_rejected"`
	Rejected          uint64  `json:"rejected"`
	Failed            uint64  `json:"failed"`
	Missed            uint64  `json:"missed"`
	Attainment        float64 `json:"attainment"`
	ULLAttainment     float64 `json:"ull_attainment"`
	TokensAvailable   float64 `json:"tokens_available"`
}

// TenantModeLatency is one tenant's arrival-to-completion latency
// distribution under one served start mode.
type TenantModeLatency struct {
	Tenant string           `json:"tenant"`
	Mode   string           `json:"mode"`
	Count  uint64           `json:"count"`
	P50    simtime.Duration `json:"p50_ns"`
	P95    simtime.Duration `json:"p95_ns"`
	P99    simtime.Duration `json:"p99_ns"`
	Max    simtime.Duration `json:"max_ns"`
}

// SLOSummary is one function's attainment against its virtual-time
// latency budget. Rejected and failed arrivals count as misses: an SLO
// is about what the caller observed, not about the happy path.
type SLOSummary struct {
	Function   string           `json:"function"`
	ULL        bool             `json:"ull"`
	Budget     simtime.Duration `json:"budget_ns"`
	Arrivals   uint64           `json:"arrivals"`
	Missed     uint64           `json:"missed"`
	Attainment float64          `json:"attainment"`
}

// percentile returns the q-quantile of sorted by nearest rank. sorted
// must be ascending and non-empty.
func percentile(sorted []simtime.Duration, q float64) simtime.Duration {
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// attainment renders a ratio with a fixed denominator-zero convention
// (vacuously attained) so reports never contain NaN.
func attainment(missed, total uint64) float64 {
	if total == 0 {
		return 1
	}
	return float64(total-missed) / float64(total)
}

// formatRatio renders attainment values with fixed precision so the CSV
// is byte-stable.
func formatRatio(f float64) string {
	return strconv.FormatFloat(f, 'f', 6, 64)
}

// WriteCSV renders the report as sectioned CSV: a summary row, then
// mode, node, failover, and SLO tables, each with its own header line.
func (r Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "policy,seed,nodes,horizon_ns,arrivals,served,rejected,failed,failovers,ull_attainment\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
		r.Policy, r.Seed, r.Nodes, int64(r.Horizon), r.Arrivals, r.Served, r.Rejected, r.Failed, r.Failovers, formatRatio(r.ULLAttainment)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nmode,count,p50_ns,p95_ns,p99_ns,max_ns\n"); err != nil {
		return err
	}
	for _, m := range r.Modes {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d\n", m.Mode, m.Count, int64(m.P50), int64(m.P95), int64(m.P99), int64(m.Max)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nnode,health,placements,served,lag_ns,p50_ns,p99_ns\n"); err != nil {
		return err
	}
	for _, n := range r.NodeSummaries {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d\n", n.Node, n.Health, n.Placements, n.Served, int64(n.Lag), int64(n.P50), int64(n.P99)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nrejection_reason,count\n"); err != nil {
		return err
	}
	for _, rr := range r.RejectionReasons {
		if _, err := fmt.Fprintf(w, "%s,%d\n", rr.Reason, rr.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nfailover_reason,count\n"); err != nil {
		return err
	}
	for _, fr := range r.FailoverReasons {
		if _, err := fmt.Fprintf(w, "%s,%d\n", fr.Reason, fr.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nfunction,ull,budget_ns,arrivals,missed,attainment\n"); err != nil {
		return err
	}
	for _, s := range r.SLOs {
		if _, err := fmt.Fprintf(w, "%s,%t,%d,%d,%d,%s\n", s.Function, s.ULL, int64(s.Budget), s.Arrivals, s.Missed, formatRatio(s.Attainment)); err != nil {
			return err
		}
	}
	if len(r.Tenants) > 0 {
		if _, err := fmt.Fprintf(w, "\ntenant,weight,entitlement,slots_held,arrivals,served,admission_rejected,rejected,failed,missed,attainment,ull_attainment,tokens_available\n"); err != nil {
			return err
		}
		for _, t := range r.Tenants {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s,%s\n",
				t.Tenant, t.Weight, t.Entitlement, t.SlotsHeld, t.Arrivals, t.Served,
				t.AdmissionRejected, t.Rejected, t.Failed, t.Missed,
				formatRatio(t.Attainment), formatRatio(t.ULLAttainment), formatRatio(t.TokensAvailable)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "\ntenant_mode_tenant,mode,count,p50_ns,p95_ns,p99_ns,max_ns\n"); err != nil {
			return err
		}
		for _, tm := range r.TenantModes {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d\n",
				tm.Tenant, tm.Mode, tm.Count, int64(tm.P50), int64(tm.P95), int64(tm.P99), int64(tm.Max)); err != nil {
				return err
			}
		}
	}
	if len(r.Attribution) > 0 {
		if _, err := fmt.Fprintf(w, "\nattribution_mode,stage,class,count,total_ns,p50_ns,p99_ns,max_ns\n"); err != nil {
			return err
		}
		for _, a := range r.Attribution {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%d\n",
				a.Mode, a.Stage, a.Class, a.Count, int64(a.Total), int64(a.P50), int64(a.P99), int64(a.Max)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// reportBuilder accumulates per-arrival outcomes during a run.
type reportBuilder struct {
	cluster *Cluster
	horizon simtime.Duration
	budgets map[string]simtime.Duration

	arrivals uint64
	served   uint64
	rejected uint64
	failed   uint64

	byMode     map[string][]simtime.Duration
	byNode     map[string][]simtime.Duration
	byFn       map[string]*fnOutcome
	rejReasons map[string]uint64

	// byTenant is indexed by the controller's tenant index (nil without
	// a tenant contract); byTenantMode keys one tenant's one-mode latency
	// samples.
	byTenant     []tenantOutcome
	byTenantMode map[tenantModeKey][]simtime.Duration
}

type fnOutcome struct {
	arrivals uint64
	missed   uint64
}

type tenantOutcome struct {
	arrivals          uint64
	served            uint64
	admissionRejected uint64
	rejected          uint64
	failed            uint64
	missed            uint64
	ullArrivals       uint64
	ullMissed         uint64
}

type tenantModeKey struct {
	tenant int
	mode   string
}

func newReportBuilder(c *Cluster, horizon simtime.Duration, budgets map[string]simtime.Duration) *reportBuilder {
	b := &reportBuilder{
		cluster:    c,
		horizon:    horizon,
		budgets:    budgets,
		byMode:     make(map[string][]simtime.Duration),
		byNode:     make(map[string][]simtime.Duration),
		byFn:       make(map[string]*fnOutcome),
		rejReasons: make(map[string]uint64),
	}
	if c.tenants != nil {
		b.byTenant = make([]tenantOutcome, c.tenants.Len())
		b.byTenantMode = make(map[tenantModeKey][]simtime.Duration)
	}
	return b
}

// record folds one trigger outcome into the report. Mode latencies are
// grouped by the mode that actually served (after fallback), because
// that is the distribution the paper's figures compare. Folding runs
// on the coordinator during finalize, in arrival order, which is what
// keeps the report byte-identical at every shard count.
//
//horselint:coordinator
func (b *reportBuilder) record(fn, servedMode, node string, latency simtime.Duration, err error) {
	b.arrivals++
	out := b.byFn[fn]
	if out == nil {
		out = &fnOutcome{}
		b.byFn[fn] = out
	}
	out.arrivals++
	entry := b.cluster.deployments[fn]
	var to *tenantOutcome
	if b.byTenant != nil && entry.tenant >= 0 {
		to = &b.byTenant[entry.tenant]
		to.arrivals++
		if entry.ull {
			to.ullArrivals++
		}
	}
	if err != nil {
		if isRejection(err) {
			b.rejected++
			reason := rejectionReason(err)
			b.rejReasons[reason]++
			if to != nil {
				if reason == RejectReasonAdmission {
					to.admissionRejected++
				} else {
					to.rejected++
				}
			}
		} else {
			b.failed++
			if to != nil {
				to.failed++
			}
		}
		out.missed++
		if to != nil {
			to.missed++
			if entry.ull {
				to.ullMissed++
			}
		}
		return
	}
	b.served++
	missed := latency > b.budgets[fn]
	if missed {
		out.missed++
	}
	b.byMode[servedMode] = append(b.byMode[servedMode], latency)
	b.byNode[node] = append(b.byNode[node], latency)
	if to != nil {
		to.served++
		if missed {
			to.missed++
			if entry.ull {
				to.ullMissed++
			}
		}
		key := tenantModeKey{tenant: entry.tenant, mode: servedMode}
		b.byTenantMode[key] = append(b.byTenantMode[key], latency)
	}
}

// isRejection distinguishes rejections — no eligible node, or refused
// at the tenant admission gate — from on-node failures.
func isRejection(err error) bool {
	return errors.Is(err, ErrNoNodes) || errors.Is(err, ErrAdmissionRejected)
}

// build assembles the final Report. Every map is drained through a
// sorted key list so identical runs serialize identically.
//
//horselint:coordinator
func (b *reportBuilder) build() Report {
	c := b.cluster
	r := Report{
		Policy:   c.router.Policy(),
		Seed:     c.seed,
		Nodes:    len(c.nodes),
		Horizon:  b.horizon,
		Arrivals: b.arrivals,
		Served:   b.served,
		Rejected: b.rejected,
		Failed:   b.failed,
	}
	rejReasons := make([]string, 0, len(b.rejReasons))
	for reason := range b.rejReasons {
		rejReasons = append(rejReasons, reason)
	}
	sort.Strings(rejReasons)
	for _, reason := range rejReasons {
		r.RejectionReasons = append(r.RejectionReasons, ReasonCount{Reason: reason, Count: b.rejReasons[reason]})
	}
	reasons := make([]string, 0, len(c.failovers))
	for reason := range c.failovers {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		r.Failovers += c.failovers[reason]
		r.FailoverReasons = append(r.FailoverReasons, ReasonCount{Reason: reason, Count: c.failovers[reason]})
	}
	modes := make([]string, 0, len(b.byMode))
	for mode := range b.byMode {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	for _, mode := range modes {
		samples := b.byMode[mode]
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		r.Modes = append(r.Modes, ModeLatency{
			Mode:  mode,
			Count: uint64(len(samples)),
			P50:   percentile(samples, 0.50),
			P95:   percentile(samples, 0.95),
			P99:   percentile(samples, 0.99),
			Max:   samples[len(samples)-1],
		})
	}
	now := c.clock.Now()
	for _, n := range c.nodes {
		summary := NodeSummary{
			Node:       n.id,
			Health:     n.health.String(),
			Placements: n.placements,
			Served:     n.served,
			Lag:        n.Lag(now),
		}
		if samples := b.byNode[n.id]; len(samples) > 0 {
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			summary.P50 = percentile(samples, 0.50)
			summary.P99 = percentile(samples, 0.99)
		}
		r.NodeSummaries = append(r.NodeSummaries, summary)
	}
	fns := make([]string, 0, len(b.byFn))
	for fn := range b.byFn {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	var ullArrivals, ullMissed uint64
	for _, fn := range fns {
		out := b.byFn[fn]
		ull := c.deployments[fn].ull
		r.SLOs = append(r.SLOs, SLOSummary{
			Function:   fn,
			ULL:        ull,
			Budget:     b.budgets[fn],
			Arrivals:   out.arrivals,
			Missed:     out.missed,
			Attainment: attainment(out.missed, out.arrivals),
		})
		if ull {
			ullArrivals += out.arrivals
			ullMissed += out.missed
		}
	}
	r.ULLAttainment = attainment(ullMissed, ullArrivals)
	if c.tenants != nil {
		// Tenant indexes are name-sorted by construction, so walking
		// them in order yields a deterministic name-ordered section.
		for i := 0; i < c.tenants.Len(); i++ {
			spec := c.tenants.Spec(i)
			out := b.byTenant[i]
			r.Tenants = append(r.Tenants, TenantSummary{
				Tenant:            spec.Name,
				Weight:            spec.Weight,
				Entitlement:       c.tenants.Entitlement(i),
				SlotsHeld:         c.tenantHorseHeld(i),
				Arrivals:          out.arrivals,
				Served:            out.served,
				AdmissionRejected: out.admissionRejected,
				Rejected:          out.rejected,
				Failed:            out.failed,
				Missed:            out.missed,
				Attainment:        attainment(out.missed, out.arrivals),
				ULLAttainment:     attainment(out.ullMissed, out.ullArrivals),
				TokensAvailable:   c.tenants.TokensAvailable(i),
			})
		}
		keys := make([]tenantModeKey, 0, len(b.byTenantMode))
		for key := range b.byTenantMode {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].tenant != keys[j].tenant {
				return keys[i].tenant < keys[j].tenant
			}
			return keys[i].mode < keys[j].mode
		})
		for _, key := range keys {
			samples := b.byTenantMode[key]
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			r.TenantModes = append(r.TenantModes, TenantModeLatency{
				Tenant: c.tenants.Spec(key.tenant).Name,
				Mode:   key.mode,
				Count:  uint64(len(samples)),
				P50:    percentile(samples, 0.50),
				P95:    percentile(samples, 0.95),
				P99:    percentile(samples, 0.99),
				Max:    samples[len(samples)-1],
			})
		}
	}
	r.Attribution = c.rec.Attribution()
	r.TraceViolations = c.rec.Violations()
	r.TraceReconcileFailures = c.rec.ReconcileFailures()
	return r
}
