package psm

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotReady is returned by Merge when the precomputed state has been
// consumed by a previous merge and not rebuilt.
var ErrNotReady = errors.New("psm: precomputed state not ready (call Rebuild)")

// group is one posA entry: a consecutive run of source-list elements that
// splices immediately after a single target position. head/tail delimit the
// run *within the source list* (the run is contiguous there because both
// lists are sorted by the same key).
type group[V any] struct {
	head  *Element[V]
	tail  *Element[V]
	count int
}

// Precomputed maintains the two auxiliary structures P²SM needs to merge a
// source list A into a target list B in O(1) (paper §4.1.1):
//
//   - arrayB (the positional index of B), and
//   - posA (the map position-in-B → run-of-A), stored here as groups.
//
// In HORSE, one Precomputed exists per paused uLL sandbox: the source is
// the sandbox's merge_vcpus list and the target is the reserved
// ull_runqueue. The structures are kept current by calling AddSource /
// RemoveSource when the sandbox's vCPU set changes and TargetInserted /
// TargetRemoved whenever the ull_runqueue changes (paper §4.1.3).
//
// Maintenance costs (documented per paper §4.1.1, with the honest
// complexity of this implementation in parentheses):
//
//   - AddSource: O(|B|) position scan + O(1) group insert (as in paper);
//   - RemoveSource: O(|A|) worst case (as in paper);
//   - TargetInserted/TargetRemoved: the paper claims O(1); a positional
//     index cannot be updated in true O(1), so this implementation pays
//     O(|B|) for the arrayB shift and O(#groups + group size) for key
//     renumbering and boundary split/merge. #groups <= |A| (the vCPU
//     count, <= 36 in every experiment), so the practical cost matches
//     the paper's "negligible" characterization.
//
// Precomputed is not safe for concurrent use; HORSE serializes structure
// maintenance under the pause/resume lock. The Merge phase itself runs
// its goroutines without locks, exactly as Algorithm 1 specifies.
type Precomputed[V any] struct {
	target *List[V]
	source *List[V]
	arrayB []*Element[V]
	groups map[int]*group[V]
	ready  bool
}

// NewPrecomputed builds the auxiliary structures for merging into target.
// The source list starts empty; populate it with AddSource.
func NewPrecomputed[V any](target *List[V]) *Precomputed[V] {
	p := &Precomputed[V]{
		target: target,
		source: NewList[V](),
	}
	p.Rebuild()
	return p
}

// Source returns the source list A (merge_vcpus). Callers must mutate it
// only through AddSource/RemoveSource so the groups stay consistent.
func (p *Precomputed[V]) Source() *List[V] { return p.source }

// Target returns the target list B.
func (p *Precomputed[V]) Target() *List[V] { return p.target }

// GroupCount returns the number of posA keys, which is also the number of
// goroutines a Merge will spawn.
func (p *Precomputed[V]) GroupCount() int { return len(p.groups) }

// Ready reports whether the structures are current and a Merge may run.
func (p *Precomputed[V]) Ready() bool { return p.ready }

// MemoryFootprint returns the approximate heap bytes held by the auxiliary
// structures (arrayB slots plus group descriptors). Used by the §5.2
// overhead experiment: the structures mostly *reference* existing run
// queue and vCPU objects, which is why the paper measures only ~528 KB
// for ten paused sandboxes.
func (p *Precomputed[V]) MemoryFootprint() int {
	const (
		pointerBytes = 8
		groupBytes   = 3 * 8 // head, tail pointers + count
		mapEntry     = 8 + groupBytes
	)
	return cap(p.arrayB)*pointerBytes + len(p.groups)*mapEntry
}

// Rebuild reconstructs arrayB from the current target and re-derives every
// group key from the source elements. It must be called after a Merge to
// re-arm the structures (HORSE instead discards the Precomputed of the
// resumed sandbox and updates the others via TargetInserted).
func (p *Precomputed[V]) Rebuild() {
	p.arrayB = p.arrayB[:0]
	if cap(p.arrayB) < p.target.Len() {
		p.arrayB = make([]*Element[V], 0, p.target.Len())
	}
	for e := p.target.Front(); e != nil; e = e.Next() {
		p.arrayB = append(p.arrayB, e)
	}
	p.groups = make(map[int]*group[V])
	for e := p.source.Front(); e != nil; e = e.Next() {
		p.attachToGroup(e)
	}
	p.ready = true
}

// arrayAt resolves a posA key to the target element after which a group
// splices. Key -1 addresses the sentinel ("before the first element").
func (p *Precomputed[V]) arrayAt(k int) *Element[V] {
	if k == -1 {
		return p.target.head()
	}
	return p.arrayB[k]
}

// spliceKeyFor returns the posA key for a source element with the given
// sort key: the position of the last target element with key <= k, or -1
// if the element precedes the whole target.
func (p *Precomputed[V]) spliceKeyFor(key int64) int {
	return p.target.InsertPosition(key) - 1
}

// AddSource inserts a new element into the source list and registers it in
// its group, creating the group if needed. It returns the new element.
func (p *Precomputed[V]) AddSource(key int64, value V) *Element[V] {
	e := p.source.Insert(key, value)
	p.attachToGroup(e)
	return e
}

// attachToGroup registers an already-linked source element in posA.
func (p *Precomputed[V]) attachToGroup(e *Element[V]) {
	k := p.spliceKeyFor(e.key)
	g := p.groups[k]
	if g == nil {
		p.groups[k] = &group[V]{head: e, tail: e, count: 1}
		return
	}
	if e.key < g.head.key {
		g.head = e
	}
	if e.key >= g.tail.key {
		g.tail = e
	}
	g.count++
}

// RemoveSource unlinks a source element and updates its group. It reports
// whether the element was present.
func (p *Precomputed[V]) RemoveSource(e *Element[V]) bool {
	k := p.spliceKeyFor(e.key)
	g := p.groups[k]
	if g == nil || !p.groupContains(g, e) {
		return false
	}
	// Fix the group's boundaries before the list forgets e's links.
	if g.count == 1 {
		delete(p.groups, k)
	} else {
		switch {
		case g.head == e:
			g.head = e.next
		case g.tail == e:
			g.tail = p.predecessorInGroup(g, e)
			if g.tail == nil {
				return false
			}
		}
		g.count--
	}
	return p.source.Remove(e)
}

// groupContains reports whether e appears in the group's run.
func (p *Precomputed[V]) groupContains(g *group[V], e *Element[V]) bool {
	for cur := g.head; ; cur = cur.next {
		if cur == e {
			return true
		}
		if cur == g.tail || cur == nil {
			return false
		}
	}
}

// predecessorInGroup walks the group's run to find the element before e.
func (p *Precomputed[V]) predecessorInGroup(g *group[V], e *Element[V]) *Element[V] {
	for cur := g.head; cur != nil && cur != g.tail.next; cur = cur.next {
		if cur.next == e {
			return cur
		}
	}
	return nil
}

// TargetInserted records that the target list gained element e at 0-based
// position pos. The caller must have already performed the insertion (via
// List.Insert). Groups keyed at or beyond pos shift by one, and the group
// straddling the insertion point splits on the new element's key.
func (p *Precomputed[V]) TargetInserted(e *Element[V], pos int) error {
	if pos < 0 || pos > len(p.arrayB) {
		return fmt.Errorf("psm: TargetInserted position %d out of range [0,%d]", pos, len(p.arrayB))
	}
	p.arrayB = append(p.arrayB, nil)
	copy(p.arrayB[pos+1:], p.arrayB[pos:])
	p.arrayB[pos] = e

	if len(p.groups) > 0 {
		shifted := make(map[int]*group[V], len(p.groups))
		for k, g := range p.groups {
			if k >= pos {
				k++
			}
			shifted[k] = g
		}
		p.groups = shifted
		p.splitGroupAt(pos-1, pos, e.key)
	}
	return nil
}

// splitGroupAt splits the group keyed lowKey: elements with key >= splitKey
// move to a new group keyed highKey (they now splice after the newly
// inserted target element).
func (p *Precomputed[V]) splitGroupAt(lowKey, highKey int, splitKey int64) {
	g := p.groups[lowKey]
	if g == nil {
		return
	}
	// Find the first element of the run with key >= splitKey.
	var prev *Element[V]
	cur := g.head
	moved := 0
	for i := 0; i < g.count && cur.key < splitKey; i++ {
		prev = cur
		cur = cur.next
	}
	if prev == nil {
		// Whole run moves to the high side.
		delete(p.groups, lowKey)
		p.groups[highKey] = g
		return
	}
	remaining := 0
	for e := g.head; e != prev.next; e = e.next {
		remaining++
	}
	moved = g.count - remaining
	if moved == 0 {
		return
	}
	p.groups[highKey] = &group[V]{head: cur, tail: g.tail, count: moved}
	g.tail = prev
	g.count = remaining
}

// TargetRemoved records that the target element formerly at 0-based
// position pos was removed (the caller already unlinked it). The group
// that spliced after the removed element merges into its predecessor
// group, and later keys shift down.
func (p *Precomputed[V]) TargetRemoved(pos int) error {
	if pos < 0 || pos >= len(p.arrayB) {
		return fmt.Errorf("psm: TargetRemoved position %d out of range [0,%d)", pos, len(p.arrayB))
	}
	copy(p.arrayB[pos:], p.arrayB[pos+1:])
	p.arrayB[len(p.arrayB)-1] = nil
	p.arrayB = p.arrayB[:len(p.arrayB)-1]

	if len(p.groups) == 0 {
		return nil
	}
	orphan := p.groups[pos]
	if orphan != nil {
		delete(p.groups, pos)
		if below := p.groups[pos-1]; below != nil {
			// Adjacent runs in the source list concatenate.
			below.tail = orphan.tail
			below.count += orphan.count
		} else {
			p.groups[pos-1] = orphan
		}
	}
	shifted := make(map[int]*group[V], len(p.groups))
	for k, g := range p.groups {
		if k > pos {
			k--
		}
		shifted[k] = g
	}
	p.groups = shifted
	return nil
}

// MergeResult describes one completed P²SM merge.
type MergeResult struct {
	// Groups is the number of posA keys, i.e. the number of splice
	// goroutines that ran ("threads" in Algorithm 1).
	Groups int
	// Merged is the number of source elements now linked into the target.
	Merged int
}

// Merge performs Algorithm 1: one goroutine per posA key, each rewiring
// two next pointers, with no locking — the pointer sets are disjoint by
// construction. After Merge the source list is empty, the target contains
// every element, and the precomputed state is consumed (Ready reports
// false until Rebuild).
//
// The work per goroutine is O(1) and the number of goroutines is the
// number of distinct splice points (<= |A|), independent of |B| — this is
// the O(1) claim of paper §4.1.2, which BenchmarkPSMMergeFlat verifies
// with wall-clock measurements across |B| spanning three orders of
// magnitude.
func (p *Precomputed[V]) Merge() (MergeResult, error) {
	if !p.ready {
		return MergeResult{}, ErrNotReady
	}
	res := MergeResult{Groups: len(p.groups), Merged: p.source.Len()}

	var wg sync.WaitGroup
	wg.Add(len(p.groups))
	for k, g := range p.groups {
		go func(k int, g *group[V]) {
			defer wg.Done()
			prev := p.arrayAt(k)
			tmp := prev.next
			prev.next = g.head
			g.tail.next = tmp
		}(k, g)
	}
	wg.Wait()

	p.target.length += p.source.Len()
	p.source.Clear()
	p.groups = make(map[int]*group[V])
	p.ready = false
	return res, nil
}

// MergeSequentialBaseline drains the source into the target with per-
// element sorted insertion — the vanilla step ④ behaviour — so benchmarks
// can compare the two under identical setups. The precomputed state is
// consumed just like Merge.
func (p *Precomputed[V]) MergeSequentialBaseline() (MergeResult, error) {
	if !p.ready {
		return MergeResult{}, ErrNotReady
	}
	res := MergeResult{Groups: len(p.groups), Merged: p.source.Len()}
	SequentialMerge(p.target, p.source)
	p.groups = make(map[int]*group[V])
	p.ready = false
	return res, nil
}

// Validate cross-checks the auxiliary structures against the lists and
// returns the first inconsistency found. Tests and failure-injection
// harnesses call it after every mutation.
func (p *Precomputed[V]) Validate() error {
	if !p.ready {
		return ErrNotReady
	}
	if len(p.arrayB) != p.target.Len() {
		return fmt.Errorf("psm: arrayB length %d != target length %d", len(p.arrayB), p.target.Len())
	}
	i := 0
	for e := p.target.Front(); e != nil; e = e.Next() {
		if p.arrayB[i] != e {
			return fmt.Errorf("psm: arrayB[%d] does not address target position %d", i, i)
		}
		i++
	}
	total := 0
	for k, g := range p.groups {
		if k < -1 || k >= p.target.Len() {
			return fmt.Errorf("psm: group key %d out of range [-1,%d)", k, p.target.Len())
		}
		if g.count <= 0 || g.head == nil || g.tail == nil {
			return fmt.Errorf("psm: group %d malformed", k)
		}
		n := 1
		for e := g.head; e != g.tail; e = e.next {
			if e == nil {
				return fmt.Errorf("psm: group %d run broken before tail", k)
			}
			n++
		}
		if n != g.count {
			return fmt.Errorf("psm: group %d count %d != run length %d", k, g.count, n)
		}
		for e := g.head; ; e = e.next {
			if got := p.spliceKeyFor(e.key); got != k {
				return fmt.Errorf("psm: element key %d in group %d should splice at %d", e.key, k, got)
			}
			if e == g.tail {
				break
			}
		}
		total += g.count
	}
	if total != p.source.Len() {
		return fmt.Errorf("psm: groups cover %d elements, source has %d", total, p.source.Len())
	}
	return nil
}
