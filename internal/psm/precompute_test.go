package psm

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/horse-faas/horse/internal/testutil"
)

// buildTarget returns a target list with the given keys and a Precomputed
// armed over it. Merge spawns one goroutine per posA key, so every test
// built on this helper also verifies the parallel splice leaves no
// goroutine behind.
func buildTarget(t *testing.T, keys ...int64) (*List[int], *Precomputed[int]) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	target := NewList[int]()
	for i, k := range keys {
		target.Insert(k, i)
	}
	p := NewPrecomputed(target)
	if err := p.Validate(); err != nil {
		t.Fatalf("fresh precompute invalid: %v", err)
	}
	return target, p
}

func assertKeys(t *testing.T, l *List[int], want ...int64) {
	t.Helper()
	got := l.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestMergeIntoMiddle(t *testing.T) {
	target, p := buildTarget(t, 10, 20, 30)
	p.AddSource(15, -1)
	p.AddSource(25, -2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 2 || res.Merged != 2 {
		t.Fatalf("result = %+v, want 2 groups / 2 merged", res)
	}
	assertKeys(t, target, 10, 15, 20, 25, 30)
	if target.Len() != 5 {
		t.Fatalf("target length = %d, want 5", target.Len())
	}
	if p.Source().Len() != 0 {
		t.Fatal("source not drained")
	}
	if p.Ready() {
		t.Fatal("precompute still ready after merge")
	}
}

func TestMergeBeforeHead(t *testing.T) {
	target, p := buildTarget(t, 10, 20)
	p.AddSource(1, 0)
	p.AddSource(2, 0)
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 1, 2, 10, 20)
}

func TestMergeAfterTail(t *testing.T) {
	target, p := buildTarget(t, 10, 20)
	p.AddSource(30, 0)
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 10, 20, 30)
}

func TestMergeIntoEmptyTarget(t *testing.T) {
	target, p := buildTarget(t)
	p.AddSource(3, 0)
	p.AddSource(1, 0)
	p.AddSource(2, 0)
	res, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 1 {
		t.Fatalf("groups = %d, want 1 (single run before sentinel)", res.Groups)
	}
	assertKeys(t, target, 1, 2, 3)
}

func TestMergeEmptySource(t *testing.T) {
	target, p := buildTarget(t, 5)
	res, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 0 || res.Merged != 0 {
		t.Fatalf("result = %+v, want zero", res)
	}
	assertKeys(t, target, 5)
}

func TestMergeEqualKeysQueueBehindTarget(t *testing.T) {
	target, p := buildTarget(t, 10, 20)
	e := p.AddSource(20, 999) // equal to target key: splices after it
	if e.Key() != 20 {
		t.Fatal("element key mismatch")
	}
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 10, 20, 20)
	// FIFO among equals: the pre-existing target element stays first.
	if target.At(1).Value() == 999 {
		t.Fatal("merged element jumped ahead of equal-key target element")
	}
}

func TestMergeNotReady(t *testing.T) {
	_, p := buildTarget(t, 1)
	p.AddSource(2, 0)
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("second merge err = %v, want ErrNotReady", err)
	}
}

func TestRebuildReArms(t *testing.T) {
	target, p := buildTarget(t, 10)
	p.AddSource(5, 0)
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	p.Rebuild()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.AddSource(7, 0)
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 5, 7, 10)
}

func TestRemoveSource(t *testing.T) {
	target, p := buildTarget(t, 10, 20)
	a := p.AddSource(12, 0)
	b := p.AddSource(14, 0)
	c := p.AddSource(16, 0)
	if !p.RemoveSource(b) {
		t.Fatal("RemoveSource(middle) = false")
	}
	if p.RemoveSource(b) {
		t.Fatal("RemoveSource twice succeeded")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.RemoveSource(a) || !p.RemoveSource(c) {
		t.Fatal("RemoveSource head/tail failed")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.GroupCount() != 0 {
		t.Fatalf("groups = %d, want 0", p.GroupCount())
	}
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 10, 20)
}

func TestRemoveSourceForeignElement(t *testing.T) {
	_, p := buildTarget(t, 10)
	p.AddSource(5, 0)
	foreign := NewList[int]().Insert(5, 0) // same key, different list
	if p.RemoveSource(foreign) {
		t.Fatal("RemoveSource accepted element from another list")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("bookkeeping corrupted by rejected removal: %v", err)
	}
}

func TestTargetInsertedSplitsGroup(t *testing.T) {
	target, p := buildTarget(t, 10, 30)
	p.AddSource(12, 0)
	p.AddSource(25, 0) // both splice after position 0 (key 10)
	if p.GroupCount() != 1 {
		t.Fatalf("groups = %d, want 1", p.GroupCount())
	}
	// The ull_runqueue gains an element between them.
	e := target.Insert(20, 0)
	if err := p.TargetInserted(e, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.GroupCount() != 2 {
		t.Fatalf("groups after split = %d, want 2", p.GroupCount())
	}
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 10, 12, 20, 25, 30)
}

func TestTargetInsertedWholeGroupMoves(t *testing.T) {
	target, p := buildTarget(t, 10, 30)
	p.AddSource(25, 0)
	p.AddSource(27, 0)
	e := target.Insert(20, 0) // all source keys >= 20: whole run re-keys
	if err := p.TargetInserted(e, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 10, 20, 25, 27, 30)
}

func TestTargetRemovedMergesGroups(t *testing.T) {
	target, p := buildTarget(t, 10, 20, 30)
	p.AddSource(15, 0) // group keyed 0
	p.AddSource(25, 0) // group keyed 1
	removed := target.At(1)
	target.Remove(removed)
	if err := p.TargetRemoved(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.GroupCount() != 1 {
		t.Fatalf("groups = %d, want 1 after merge", p.GroupCount())
	}
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 10, 15, 25, 30)
}

func TestTargetRemovedHead(t *testing.T) {
	target, p := buildTarget(t, 10, 20)
	p.AddSource(15, 0)
	removed := target.At(0)
	target.Remove(removed)
	if err := p.TargetRemoved(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge(); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, target, 15, 20)
}

func TestTargetPositionsOutOfRange(t *testing.T) {
	_, p := buildTarget(t, 10)
	if err := p.TargetInserted(&Element[int]{}, 5); err == nil {
		t.Fatal("TargetInserted out of range accepted")
	}
	if err := p.TargetRemoved(3); err == nil {
		t.Fatal("TargetRemoved out of range accepted")
	}
}

func TestMemoryFootprintGrowsWithStructures(t *testing.T) {
	_, small := buildTarget(t, 1, 2, 3)
	big := NewList[int]()
	for i := 0; i < 1000; i++ {
		big.Insert(int64(i), i)
	}
	p := NewPrecomputed(big)
	if p.MemoryFootprint() <= small.MemoryFootprint() {
		t.Fatal("footprint did not grow with target size")
	}
}

func TestMergeSequentialBaselineMatches(t *testing.T) {
	targetA, pa := buildTarget(t, 10, 20, 30)
	targetB, pb := buildTarget(t, 10, 20, 30)
	for _, k := range []int64{5, 15, 15, 35} {
		pa.AddSource(k, 0)
		pb.AddSource(k, 0)
	}
	if _, err := pa.Merge(); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.MergeSequentialBaseline(); err != nil {
		t.Fatal(err)
	}
	ka, kb := targetA.Keys(), targetB.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("lengths differ: %v vs %v", ka, kb)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("P²SM %v != sequential %v", ka, kb)
		}
	}
}

// Property (the core P²SM correctness claim): for arbitrary target and
// source key multisets, Merge produces exactly the sorted union that the
// sequential baseline produces, and the target stays sorted.
func TestMergeEquivalenceProperty(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := func(targetKeys, sourceKeys []int16) bool {
		target := NewList[int]()
		for _, k := range targetKeys {
			target.Insert(int64(k), 0)
		}
		p := NewPrecomputed(target)
		for _, k := range sourceKeys {
			p.AddSource(int64(k), 1)
		}
		if p.Validate() != nil {
			return false
		}
		if _, err := p.Merge(); err != nil {
			return false
		}
		if !target.IsSorted() {
			return false
		}
		if target.Len() != len(targetKeys)+len(sourceKeys) {
			return false
		}
		want := make([]int64, 0, target.Len())
		for _, k := range targetKeys {
			want = append(want, int64(k))
		}
		for _, k := range sourceKeys {
			want = append(want, int64(k))
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := target.Keys()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the continuous-maintenance path (paper §4.1.3) — interleaved
// source adds/removes and target inserts/removes — always leaves the
// structures valid, and a final merge is still exact.
func TestMaintenanceProperty(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := NewList[int]()
		p := NewPrecomputed(target)
		var sourceElems []*Element[int]
		for _, op := range ops {
			key := int64(rng.Intn(100))
			switch op % 4 {
			case 0: // add to source
				sourceElems = append(sourceElems, p.AddSource(key, 0))
			case 1: // remove from source
				if len(sourceElems) > 0 {
					i := rng.Intn(len(sourceElems))
					if !p.RemoveSource(sourceElems[i]) {
						return false
					}
					sourceElems = append(sourceElems[:i], sourceElems[i+1:]...)
				}
			case 2: // ull_runqueue gains an element
				pos := target.InsertPosition(key)
				e := target.Insert(key, 0)
				if p.TargetInserted(e, pos) != nil {
					return false
				}
			case 3: // ull_runqueue loses an element
				if target.Len() > 0 {
					pos := rng.Intn(target.Len())
					target.Remove(target.At(pos))
					if p.TargetRemoved(pos) != nil {
						return false
					}
				}
			}
			if p.Validate() != nil {
				return false
			}
		}
		wantLen := target.Len() + p.Source().Len()
		if _, err := p.Merge(); err != nil {
			return false
		}
		return target.IsSorted() && target.Len() == wantLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
