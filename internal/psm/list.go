// Package psm implements P²SM, the parallel precomputed sorted merge at the
// heart of HORSE (paper §4.1).
//
// P²SM merges a sorted linked list A (in HORSE: merge_vcpus, the paused
// sandbox's vCPUs pre-sorted by the scheduler's sort attribute) into a
// sorted linked list B (in HORSE: the reserved ull_runqueue) in O(1) time,
// independent of the length of either list. The trick is to maintain, while
// the merge is *not* happening, two auxiliary structures:
//
//   - arrayB: a positional index of B — arrayB[i] is the address of B's
//     element at position i;
//   - posA: a map from a position in B to the consecutive run of A elements
//     that belongs immediately after that position.
//
// With these precomputed, the merge itself is two pointer writes per posA
// key, and the keys are spliced by concurrent goroutines with no mutual
// exclusion (each goroutine touches a disjoint set of next pointers).
//
// This file provides the sorted singly-linked list both A and B are built
// from. The list uses a head sentinel so "splice before the first element"
// needs no special casing: position -1 addresses the sentinel.
package psm

// Element is a node of a sorted List. Elements are allocated by their List
// and move between lists during a merge; an Element must belong to at most
// one list at a time.
type Element[V any] struct {
	key   int64
	value V
	next  *Element[V]
}

// Key returns the element's sort key. In HORSE the key is the scheduler's
// sort attribute (remaining credit under a credit2-style scheduler).
func (e *Element[V]) Key() int64 { return e.key }

// Value returns the element's payload.
func (e *Element[V]) Value() V { return e.value }

// Next returns the following element, or nil at the end of the list.
func (e *Element[V]) Next() *Element[V] { return e.next }

// List is a singly-linked list kept sorted by ascending key. Elements with
// equal keys preserve insertion order (FIFO among equals), which is the
// behaviour of a credit-sorted run queue: a newly inserted vCPU queues
// behind already-runnable vCPUs with the same credit.
//
// List is not safe for concurrent mutation. The concurrent phase of P²SM
// (Merge) is safe because each goroutine writes a disjoint set of pointers;
// see Precomputed.Merge.
type List[V any] struct {
	sentinel Element[V]
	length   int
}

// NewList returns an empty sorted list.
func NewList[V any]() *List[V] { return &List[V]{} }

// Len returns the number of elements.
func (l *List[V]) Len() int { return l.length }

// Front returns the first element, or nil if the list is empty.
func (l *List[V]) Front() *Element[V] { return l.sentinel.next }

// head returns the sentinel, the "element before position 0".
func (l *List[V]) head() *Element[V] { return &l.sentinel }

// Insert adds a new element with the given key and value at its sorted
// position and returns it. Cost is O(n) in the list length — this is the
// sequential sorted merge the vanilla resume path performs once per vCPU,
// and precisely the cost P²SM's merge phase avoids.
func (l *List[V]) Insert(key int64, value V) *Element[V] {
	e := &Element[V]{key: key, value: value}
	l.insertElement(e)
	return e
}

// insertElement links an existing element (e.g. one migrating from another
// list) at its sorted position.
func (l *List[V]) insertElement(e *Element[V]) {
	prev := &l.sentinel
	for prev.next != nil && prev.next.key <= e.key {
		prev = prev.next
	}
	e.next = prev.next
	prev.next = e
	l.length++
}

// InsertPosition returns the 0-based position at which an element with the
// given key would be inserted (equivalently: the number of elements with
// key <= the given key). The predecessor of that position is the splice
// point P²SM records in posA.
func (l *List[V]) InsertPosition(key int64) int {
	pos := 0
	for e := l.sentinel.next; e != nil && e.key <= key; e = e.next {
		pos++
	}
	return pos
}

// At returns the element at 0-based position i, or nil if out of range.
func (l *List[V]) At(i int) *Element[V] {
	if i < 0 || i >= l.length {
		return nil
	}
	e := l.sentinel.next
	for ; i > 0; i-- {
		e = e.next
	}
	return e
}

// Remove unlinks e from the list. It reports whether e was found. Cost is
// O(n): the singly-linked representation requires a predecessor scan, as
// in the run-queue structures HORSE patches.
func (l *List[V]) Remove(e *Element[V]) bool {
	for prev := &l.sentinel; prev.next != nil; prev = prev.next {
		if prev.next == e {
			prev.next = e.next
			e.next = nil
			l.length--
			return true
		}
	}
	return false
}

// RemoveIf unlinks every element the predicate selects, in one pass, and
// returns how many were removed. It is the bulk counterpart of Remove
// (which costs a predecessor scan per element).
func (l *List[V]) RemoveIf(pred func(*Element[V]) bool) int {
	removed := 0
	for prev := &l.sentinel; prev.next != nil; {
		if pred(prev.next) {
			e := prev.next
			prev.next = e.next
			e.next = nil
			l.length--
			removed++
			continue
		}
		prev = prev.next
	}
	return removed
}

// PopFront unlinks and returns the first element, or nil if empty.
func (l *List[V]) PopFront() *Element[V] {
	e := l.sentinel.next
	if e == nil {
		return nil
	}
	l.sentinel.next = e.next
	e.next = nil
	l.length--
	return e
}

// Keys returns the element keys in list order.
func (l *List[V]) Keys() []int64 {
	out := make([]int64, 0, l.length)
	for e := l.sentinel.next; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

// Values returns the element payloads in list order.
func (l *List[V]) Values() []V {
	out := make([]V, 0, l.length)
	for e := l.sentinel.next; e != nil; e = e.next {
		out = append(out, e.value)
	}
	return out
}

// IsSorted reports whether keys are in non-decreasing order. It always
// holds for lists mutated only through this package; tests use it to
// verify the merge preserves the invariant.
func (l *List[V]) IsSorted() bool {
	e := l.sentinel.next
	if e == nil {
		return true
	}
	for ; e.next != nil; e = e.next {
		if e.next.key < e.key {
			return false
		}
	}
	return true
}

// Clear empties the list. Elements still referenced elsewhere keep their
// payloads but are no longer linked.
func (l *List[V]) Clear() {
	l.sentinel.next = nil
	l.length = 0
}

// SequentialMerge inserts every element of src into dst one by one, the
// way the vanilla resume path merges each vCPU into a run queue (paper
// §3.1 step ④). src is emptied. Cost is O(|src| · |dst|); it exists as the
// reference baseline for P²SM's O(1) merge.
func SequentialMerge[V any](dst, src *List[V]) {
	for {
		e := src.PopFront()
		if e == nil {
			return
		}
		dst.insertElement(e)
	}
}
