package psm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestListInsertKeepsSorted(t *testing.T) {
	l := NewList[string]()
	for _, k := range []int64{5, 1, 9, 3, 7} {
		l.Insert(k, "v")
	}
	want := []int64{1, 3, 5, 7, 9}
	got := l.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	if !l.IsSorted() {
		t.Fatal("IsSorted = false")
	}
}

func TestListEqualKeysFIFO(t *testing.T) {
	l := NewList[string]()
	l.Insert(2, "first")
	l.Insert(2, "second")
	l.Insert(2, "third")
	l.Insert(1, "before")
	got := l.Values()
	want := []string{"before", "first", "second", "third"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestListInsertPosition(t *testing.T) {
	l := NewList[int]()
	for _, k := range []int64{10, 20, 20, 30} {
		l.Insert(k, 0)
	}
	tests := []struct {
		give int64
		want int
	}{
		{give: 5, want: 0},
		{give: 10, want: 1},
		{give: 15, want: 1},
		{give: 20, want: 3}, // after both equal keys (FIFO)
		{give: 25, want: 3},
		{give: 30, want: 4},
		{give: 99, want: 4},
	}
	for _, tt := range tests {
		if got := l.InsertPosition(tt.give); got != tt.want {
			t.Errorf("InsertPosition(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestListAt(t *testing.T) {
	l := NewList[int]()
	e0 := l.Insert(1, 100)
	e1 := l.Insert(2, 200)
	if l.At(0) != e0 || l.At(1) != e1 {
		t.Fatal("At returned wrong elements")
	}
	if l.At(-1) != nil || l.At(2) != nil {
		t.Fatal("At out of range should return nil")
	}
}

func TestListRemove(t *testing.T) {
	l := NewList[int]()
	a := l.Insert(1, 0)
	b := l.Insert(2, 0)
	c := l.Insert(3, 0)
	if !l.Remove(b) {
		t.Fatal("Remove(middle) = false")
	}
	if l.Remove(b) {
		t.Fatal("Remove twice succeeded")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if !l.Remove(a) || !l.Remove(c) {
		t.Fatal("Remove head/tail failed")
	}
	if l.Len() != 0 || l.Front() != nil {
		t.Fatal("list not empty after removing all")
	}
}

func TestListPopFront(t *testing.T) {
	l := NewList[int]()
	if l.PopFront() != nil {
		t.Fatal("PopFront on empty returned element")
	}
	l.Insert(2, 20)
	l.Insert(1, 10)
	e := l.PopFront()
	if e == nil || e.Key() != 1 || e.Value() != 10 {
		t.Fatalf("PopFront = %v, want key 1", e)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestListClear(t *testing.T) {
	l := NewList[int]()
	l.Insert(1, 0)
	l.Insert(2, 0)
	l.Clear()
	if l.Len() != 0 || l.Front() != nil {
		t.Fatal("Clear left elements behind")
	}
}

func TestSequentialMerge(t *testing.T) {
	dst := NewList[int]()
	src := NewList[int]()
	for _, k := range []int64{1, 5, 9} {
		dst.Insert(k, 0)
	}
	for _, k := range []int64{0, 4, 5, 10} {
		src.Insert(k, 1)
	}
	SequentialMerge(dst, src)
	if src.Len() != 0 {
		t.Fatalf("source not drained: %d left", src.Len())
	}
	want := []int64{0, 1, 4, 5, 5, 9, 10}
	got := dst.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if !dst.IsSorted() {
		t.Fatal("merged list not sorted")
	}
}

// Property: inserting any sequence of keys yields exactly the multiset,
// sorted, with length bookkeeping intact.
func TestListInsertProperty(t *testing.T) {
	f := func(keys []int16) bool {
		l := NewList[struct{}]()
		for _, k := range keys {
			l.Insert(int64(k), struct{}{})
		}
		if l.Len() != len(keys) {
			return false
		}
		got := l.Keys()
		want := make([]int64, len(keys))
		for i, k := range keys {
			want[i] = int64(k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return l.IsSorted()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of inserts and removes keep the list
// sorted and the length correct.
func TestListMutationProperty(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewList[struct{}]()
		var live []*Element[struct{}]
		for _, op := range ops {
			if op >= 0 || len(live) == 0 {
				live = append(live, l.Insert(int64(op), struct{}{}))
			} else {
				i := rng.Intn(len(live))
				if !l.Remove(live[i]) {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if l.Len() != len(live) || !l.IsSorted() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveIf(t *testing.T) {
	l := NewList[int]()
	for _, k := range []int64{1, 2, 3, 4, 5, 6} {
		l.Insert(k, int(k))
	}
	removed := l.RemoveIf(func(e *Element[int]) bool { return e.Key()%2 == 0 })
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	want := []int64{1, 3, 5}
	got := l.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Removing everything, including head runs.
	if n := l.RemoveIf(func(*Element[int]) bool { return true }); n != 3 {
		t.Fatalf("removed = %d, want 3", n)
	}
	if l.Len() != 0 || l.Front() != nil {
		t.Fatal("list not empty")
	}
	// No-op on empty list.
	if n := l.RemoveIf(func(*Element[int]) bool { return true }); n != 0 {
		t.Fatalf("removed = %d on empty", n)
	}
}
