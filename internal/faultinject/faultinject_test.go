package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Check(SiteResume); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if got := in.SiteStats(SiteResume); got != (Stats{}) {
		t.Fatalf("nil injector stats = %+v", got)
	}
	if in.AllStats() != nil {
		t.Fatal("nil injector AllStats != nil")
	}
	if in.String() != "" {
		t.Fatalf("nil injector String = %q", in.String())
	}
}

func TestUnarmedSitePasses(t *testing.T) {
	in, err := New(1, Rule{Site: SitePause, Nth: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := in.Check(SiteResume); err != nil {
			t.Fatalf("unarmed site injected at visit %d: %v", i+1, err)
		}
	}
}

func TestNthFiresExactlyOnce(t *testing.T) {
	in, err := New(1, Rule{Site: SiteResume, Nth: 3})
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 10; i++ {
		if err := in.Check(SiteResume); err != nil {
			fired = append(fired, i)
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != SiteResume || fe.Visit != 3 {
				t.Fatalf("visit %d: bad injected error %v", i, err)
			}
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("nth=3 fired at visits %v, want [3]", fired)
	}
	st := in.SiteStats(SiteResume)
	if st.Visits != 10 || st.Injected != 1 {
		t.Fatalf("stats = %+v, want 10 visits, 1 injected", st)
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	in, err := New(1, Rule{Site: SitePause, Every: 4})
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 12; i++ {
		if in.Check(SitePause) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{4, 8, 12}
	if len(fired) != len(want) {
		t.Fatalf("every=4 fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("every=4 fired at %v, want %v", fired, want)
		}
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		t.Helper()
		in, err := New(seed, Rule{Site: SiteResume, Rate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 500)
		for i := range out {
			out[i] = in.Check(SiteResume) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at visit %d", i+1)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 500-visit patterns")
	}
	injected := 0
	for _, f := range a {
		if f {
			injected++
		}
	}
	// 500 draws at 30%: expect ≈150; a gross deviation means the rate
	// is not being applied.
	if injected < 100 || injected > 200 {
		t.Fatalf("rate=0.3 injected %d/500", injected)
	}
}

func TestSitesDrawIndependently(t *testing.T) {
	// Interleaving checks of a second site must not perturb the first
	// site's draw sequence.
	solo, err := New(7, Rule{Site: SiteResume, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := New(7, Rule{Site: SiteResume, Rate: 0.5}, Rule{Site: SitePause, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a := solo.Check(SiteResume) != nil
		mixed.Check(SitePause)
		b := mixed.Check(SiteResume) != nil
		if a != b {
			t.Fatalf("visit %d: interleaved pause checks changed the resume pattern", i+1)
		}
	}
}

func TestWrappedError(t *testing.T) {
	busy := errors.New("simulated busy")
	in, err := New(1, Rule{Site: SiteResume, Nth: 1, Err: busy})
	if err != nil {
		t.Fatal(err)
	}
	got := in.Check(SiteResume)
	if got == nil {
		t.Fatal("nth=1 did not fire")
	}
	if !errors.Is(got, ErrInjected) {
		t.Fatalf("injected error does not match ErrInjected: %v", got)
	}
	if !errors.Is(got, busy) {
		t.Fatalf("injected error does not match wrapped error: %v", got)
	}
	var fe *Error
	if !errors.As(got, &fe) || fe.Err != busy {
		t.Fatalf("errors.As failed or lost the wrapped error: %v", got)
	}
}

func TestRuleValidation(t *testing.T) {
	tests := []struct {
		name string
		rule Rule
	}{
		{"no site", Rule{Rate: 0.5}},
		{"no trigger", Rule{Site: SiteResume}},
		{"two triggers", Rule{Site: SiteResume, Rate: 0.5, Nth: 1}},
		{"rate above 1", Rule{Site: SiteResume, Rate: 1.5}},
		{"negative rate", Rule{Site: SiteResume, Rate: -0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(1, tt.rule); err == nil {
				t.Fatalf("rule %+v accepted", tt.rule)
			}
		})
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("resume:rate=0.05, pause:nth=3,invoke:every=100")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[0] != (Rule{Site: SiteResume, Rate: 0.05}) {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1] != (Rule{Site: SitePause, Nth: 3}) {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2] != (Rule{Site: SiteInvoke, Every: 100}) {
		t.Fatalf("rule 2 = %+v", rules[2])
	}

	for _, bad := range []string{
		"resume",
		"resume:rate",
		"warp:rate=0.5",
		"resume:rate=2",
		"resume:rate=0",
		"resume:nth=0",
		"resume:every=0",
		"resume:often=1",
	} {
		if _, err := ParseSpec(bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %q: err = %v, want ErrBadSpec", bad, err)
		}
	}
}

// TestParseSpecErrorPositions pins the parser's error convention:
// messages quote the offending fragment and its byte offset in the
// original spec, even for clauses deep in a long flag value.
func TestParseSpecErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		spec string
		frag string
		at   string
	}{
		{"no colon", "resume", `"resume"`, "at offset 0"},
		{"no colon later", "resume:rate=0.5, pause", `"pause"`, "at offset 17"},
		{"unknown site", "resume:rate=0.5,warp:rate=0.5", `"warp"`, "at offset 16"},
		{"bare trigger", "resume:rate", `"rate"`, "at offset 7"},
		{"bad rate", "pause:nth=3,resume:rate=2", `"rate=2"`, "at offset 19"},
		{"bad nth", "resume:nth=0", `"nth=0"`, "at offset 7"},
		{"bad every", "invoke:every=x", `"every=x"`, "at offset 7"},
		{"unknown trigger", "resume:often=1", `"often=1"`, "at offset 7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.spec)
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParseSpec(%q) = %v, want ErrBadSpec", tc.spec, err)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not quote %s", err, tc.frag)
			}
			if !strings.Contains(err.Error(), tc.at) {
				t.Errorf("error %q does not carry %q", err, tc.at)
			}
		})
	}
}

func TestFromSpecRoundTrip(t *testing.T) {
	in, err := FromSpec(9, "pause:nth=3,resume:rate=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.String(); got != "pause:nth=3,resume:rate=0.05" {
		t.Fatalf("String = %q", got)
	}
	empty, err := FromSpec(9, "  ")
	if err != nil {
		t.Fatal(err)
	}
	if empty != nil {
		t.Fatal("empty spec built a non-nil injector")
	}
}

func TestErrorMessages(t *testing.T) {
	e := &Error{Site: SiteResume, Visit: 4}
	if want := "faultinject: injected fault at resume (visit 4)"; e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
	wrapped := &Error{Site: SitePause, Visit: 2, Err: fmt.Errorf("inner")}
	if want := "faultinject: injected fault at pause (visit 2): inner"; wrapped.Error() != want {
		t.Fatalf("Error() = %q, want %q", wrapped.Error(), want)
	}
}

func TestDeriveIndependentDeterministicStreams(t *testing.T) {
	var nilIn *Injector
	if nilIn.Derive("node00") != nil {
		t.Fatal("nil injector derived a non-nil child")
	}
	parent, err := New(42,
		Rule{Site: SiteInvoke, Rate: 0.5},
		Rule{Site: SiteResume, Nth: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(in *Injector, site Site, n int) string {
		out := ""
		for i := 0; i < n; i++ {
			if in.Check(site) != nil {
				out += "x"
			} else {
				out += "."
			}
		}
		return out
	}
	// Same scope, same seed ⇒ the same child stream, bit for bit.
	a := draw(parent.Derive("node00"), SiteInvoke, 64)
	b := draw(parent.Derive("node00"), SiteInvoke, 64)
	if a != b {
		t.Fatalf("same-scope children diverged:\n%s\n%s", a, b)
	}
	// Different scopes ⇒ independent streams (at rate 0.5 over 64 draws,
	// identical patterns mean the seed mixing is broken).
	if c := draw(parent.Derive("node01"), SiteInvoke, 64); c == a {
		t.Fatalf("scopes node00 and node01 produced identical draw patterns: %s", c)
	}
	// The child arms the parent's rules with fresh visit counters: nth=3
	// fires on the child's own third visit regardless of parent visits.
	parent.Check(SiteResume)
	parent.Check(SiteResume)
	child := parent.Derive("node00")
	if err := child.Check(SiteResume); err != nil {
		t.Fatalf("child visit 1 fired: %v", err)
	}
	if err := child.Check(SiteResume); err != nil {
		t.Fatalf("child visit 2 fired: %v", err)
	}
	if err := child.Check(SiteResume); !errors.Is(err, ErrInjected) {
		t.Fatalf("child visit 3 = %v, want injected fault", err)
	}
	// Deriving never perturbs the parent's own counters or streams.
	if got := parent.SiteStats(SiteResume).Visits; got != 2 {
		t.Fatalf("parent resume visits = %d, want 2", got)
	}
}
