// Package faultinject provides the deterministic, seed-driven fault
// injector behind the platform's robustness testing (DESIGN.md §7's
// failure-injection matrix and §10's degradation story).
//
// An Injector holds a set of Rules, each bound to a named Site — a
// choke point in the control plane where a simulated failure can be
// raised: sandbox creation, pause, resume, snapshot restore, function
// invocation, and sandbox destruction. Production code calls Check at
// each site; a nil error means "proceed", a non-nil error is the
// injected fault, which propagates exactly like the real failure it
// stands in for (the vmm and faas layers cannot tell the difference).
//
// Three trigger shapes cover the §7 matrix:
//
//   - Rate: inject with a fixed probability per visit, drawn from a
//     per-site PRNG derived from the injector seed — so the same seed
//     reproduces the same fault pattern bit-for-bit, and checking one
//     site never perturbs the draw sequence of another.
//   - Nth: inject exactly once, at the nth visit of the site.
//   - Every: inject at every multiple of the given visit count.
//
// A Rule may carry an explicit error to wrap (e.g. vmm.ErrResumeBusy to
// simulate resume-lock contention); matching with errors.Is sees both
// the wrapped error and the ErrInjected sentinel, and errors.As
// recovers the *Error with the site and visit number.
//
// Injector is not safe for concurrent use: like the virtual clock it
// serves, it belongs to the single goroutine driving a simulation.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Site names an injection point in the control plane.
type Site string

// The injection sites wired through vmm and faas (DESIGN.md §10).
const (
	// SiteCreate fires at sandbox creation (vmm.CreateSandbox).
	SiteCreate Site = "create"
	// SitePause fires at pause entry (vmm.BeginPause), covering the
	// vanilla pause, the uLL pause, and the trigger re-pool path.
	SitePause Site = "pause"
	// SiteResume fires at resume entry (vmm.BeginResume), before the
	// resume lock is taken or any queue state is touched.
	SiteResume Site = "resume"
	// SiteRestore fires on the snapshot-restore trigger path (faas).
	SiteRestore Site = "restore"
	// SiteInvoke fires in place of the function invocation (faas),
	// simulating a function crash.
	SiteInvoke Site = "invoke"
	// SiteDestroy fires at sandbox destruction (vmm.DestroySandbox),
	// the failure mode that exercised the keep-alive reaper's pool
	// consistency.
	SiteDestroy Site = "destroy"
	// SiteNodeFail fires on the cluster routing path, checked once per
	// routing decision; a fired fault kills the node that was about to
	// serve (pools lost, trigger fails over).
	SiteNodeFail Site = "cluster.node.fail"
	// SiteNodeDrain fires on the cluster routing path like SiteNodeFail,
	// but the node drains gracefully: it stops taking new triggers and
	// its warm capacity is re-homed onto the surviving nodes.
	SiteNodeDrain Site = "cluster.node.drain"
)

// Sites returns every defined injection site in stable order.
func Sites() []Site {
	return []Site{SiteCreate, SitePause, SiteResume, SiteRestore, SiteInvoke, SiteDestroy, SiteNodeFail, SiteNodeDrain}
}

// ErrInjected is the sentinel every injected fault matches with
// errors.Is, regardless of the wrapped error.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrBadSpec is the sentinel wrapped by every ParseSpec error, matching
// the loadgen and tenant parser convention: callers branch on the
// sentinel, humans read the quoted fragment and byte offset.
var ErrBadSpec = errors.New("faultinject: bad fault spec")

// Error is the concrete injected fault. It reports the site and the
// 1-based visit at which it fired, and optionally wraps the error the
// rule was configured to simulate.
type Error struct {
	Site  Site
	Visit uint64
	Err   error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("faultinject: injected fault at %s (visit %d): %v", e.Site, e.Visit, e.Err)
	}
	return fmt.Sprintf("faultinject: injected fault at %s (visit %d)", e.Site, e.Visit)
}

// Is matches the ErrInjected sentinel.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Unwrap exposes the simulated error, if the rule carried one.
func (e *Error) Unwrap() error { return e.Err }

// Rule arms one site with one trigger. Exactly one of Rate, Nth, or
// Every must be set.
type Rule struct {
	// Site is the injection point the rule arms.
	Site Site
	// Rate injects with this probability (0 < Rate <= 1) per visit.
	Rate float64
	// Nth injects exactly once, at the nth visit (1-based).
	Nth uint64
	// Every injects at every visit that is a multiple of this count.
	Every uint64
	// Err, when non-nil, is wrapped in the injected *Error so callers
	// can match the simulated failure (e.g. vmm.ErrResumeBusy for
	// resume-lock contention). When nil the fault is a bare *Error.
	Err error
}

func (r Rule) validate() error {
	if r.Site == "" {
		return errors.New("faultinject: rule has no site")
	}
	set := 0
	if r.Rate != 0 {
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("faultinject: rate %v out of (0,1]", r.Rate)
		}
		set++
	}
	if r.Nth != 0 {
		set++
	}
	if r.Every != 0 {
		set++
	}
	if set != 1 {
		return fmt.Errorf("faultinject: rule for site %q must set exactly one of rate, nth, every", r.Site)
	}
	return nil
}

// siteState is the per-site PRNG plus visit bookkeeping. Ownership is
// per instance: the cluster's parent injector belongs to the
// coordinator (see Cluster.faults), while node-derived children are
// checked from their owning shard — either way, mutation must stay in
// phase-annotated code.
//
//horselint:shardlocal
type siteState struct {
	rng      *rand.Rand
	rules    []Rule
	visits   uint64
	injected uint64
}

// Injector evaluates the armed rules at each Check. The zero value and
// the nil pointer are inert: Check always returns nil.
//
//horselint:shardlocal
type Injector struct {
	seed  int64
	sites map[Site]*siteState
}

// New builds an injector from an explicit seed and a rule set.
//
//horselint:coordinator
func New(seed int64, rules ...Rule) (*Injector, error) {
	in := &Injector{seed: seed, sites: make(map[Site]*siteState)}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		st := in.site(r.Site)
		st.rules = append(st.rules, r)
	}
	return in, nil
}

// Seed returns the seed the injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// site returns (creating if needed) the state for s, with a PRNG whose
// seed mixes the injector seed and the site name, so the draw sequence
// of one site is independent of how often the others are checked.
//
//horselint:coordinator
func (in *Injector) site(s Site) *siteState {
	if st, ok := in.sites[s]; ok {
		return st
	}
	h := fnv.New64a()
	h.Write([]byte(s))
	st := &siteState{rng: rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))}
	in.sites[s] = st
	return st
}

// Derive returns a child injector arming the same rules under a
// scope-mixed seed: each of the child's per-site PRNG streams is seeded
// by (seed ^ fnv64a(scope)) ^ fnv64a(site), and its visit counters
// start at zero. Children exist so concurrent consumers — one platform
// per cluster node, each checked from its own shard goroutine — get
// independent deterministic fault streams instead of racing on one
// shared PRNG: deriving with the node id gives every node the same
// rule set but its own reproducible draw sequence, independent of how
// often the other nodes are checked. Safe on a nil injector (returns
// nil, which is inert).
//
//horselint:coordinator
func (in *Injector) Derive(scope string) *Injector {
	if in == nil {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(scope))
	child := &Injector{seed: in.seed ^ int64(h.Sum64()), sites: make(map[Site]*siteState)}
	sites := make([]Site, 0, len(in.sites))
	for s := range in.sites {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		st := child.site(s)
		st.rules = append(st.rules, in.sites[s].rules...)
	}
	return child
}

// Check evaluates site's rules against this visit and returns the
// injected fault, or nil to proceed. Safe on a nil injector.
//
//horselint:shardphase
func (in *Injector) Check(site Site) error {
	if in == nil {
		return nil
	}
	st, ok := in.sites[site]
	if !ok {
		return nil
	}
	st.visits++
	for i := range st.rules {
		r := &st.rules[i]
		fire := false
		switch {
		case r.Nth > 0:
			fire = st.visits == r.Nth
		case r.Every > 0:
			fire = st.visits%r.Every == 0
		case r.Rate > 0:
			fire = st.rng.Float64() < r.Rate
		}
		if fire {
			st.injected++
			return &Error{Site: site, Visit: st.visits, Err: r.Err}
		}
	}
	return nil
}

// Stats summarizes one site's activity.
type Stats struct {
	// Visits counts Check calls at the site.
	Visits uint64
	// Injected counts the visits at which a fault fired.
	Injected uint64
}

// SiteStats returns the counters for one site. Safe on a nil injector.
func (in *Injector) SiteStats(site Site) Stats {
	if in == nil {
		return Stats{}
	}
	st, ok := in.sites[site]
	if !ok {
		return Stats{}
	}
	return Stats{Visits: st.visits, Injected: st.injected}
}

// AllStats snapshots the counters of every armed or visited site. The
// caller owns the returned map. Safe on a nil injector.
func (in *Injector) AllStats() map[Site]Stats {
	if in == nil {
		return nil
	}
	out := make(map[Site]Stats, len(in.sites))
	for s, st := range in.sites {
		out[s] = Stats{Visits: st.visits, Injected: st.injected}
	}
	return out
}

// String renders the armed rules back in ParseSpec syntax, in stable
// site order, for logs and flag round-trips.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	sites := make([]string, 0, len(in.sites))
	for s := range in.sites {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var parts []string
	for _, s := range sites {
		for _, r := range in.sites[Site(s)].rules {
			switch {
			case r.Nth > 0:
				parts = append(parts, fmt.Sprintf("%s:nth=%d", s, r.Nth))
			case r.Every > 0:
				parts = append(parts, fmt.Sprintf("%s:every=%d", s, r.Every))
			case r.Rate > 0:
				parts = append(parts, fmt.Sprintf("%s:rate=%v", s, r.Rate))
			}
		}
	}
	return strings.Join(parts, ",")
}

// knownSites indexes the defined sites for spec validation.
var knownSites = func() map[Site]bool {
	out := make(map[Site]bool)
	for _, s := range Sites() {
		out[s] = true
	}
	return out
}()

// ParseSpec parses the -faults flag syntax: comma-separated
// site:trigger=value clauses, e.g.
//
//	resume:rate=0.05,pause:nth=3,invoke:every=100
//
// Triggers are rate (probability per visit), nth (one-shot at the nth
// visit), and every (periodic). An empty spec yields no rules. Errors
// wrap ErrBadSpec and quote the offending clause with its byte offset
// in the input, so a long -faults flag pinpoints its own typo.
func ParseSpec(spec string) ([]Rule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var rules []Rule
	at := 0
	for rest := spec; ; {
		raw, tail, more := strings.Cut(rest, ",")
		clause := strings.TrimSpace(raw)
		if clause != "" {
			base := at + strings.Index(raw, clause)
			r, err := parseFaultClause(clause, base)
			if err != nil {
				return nil, err
			}
			rules = append(rules, r)
		}
		if !more {
			break
		}
		at += len(raw) + 1
		rest = tail
	}
	return rules, nil
}

// parseFaultClause parses one site:trigger=value clause; base is the
// clause's byte offset in the full spec, threaded into every error.
func parseFaultClause(clause string, base int) (Rule, error) {
	site, trigger, ok := strings.Cut(clause, ":")
	if !ok {
		return Rule{}, fmt.Errorf("%w: clause %q at offset %d: want site:trigger=value", ErrBadSpec, clause, base)
	}
	if !knownSites[Site(site)] {
		return Rule{}, fmt.Errorf("%w: unknown site %q at offset %d (known: %s)", ErrBadSpec, site, base, siteList())
	}
	key, value, ok := strings.Cut(trigger, "=")
	triggerAt := base + len(site) + 1
	if !ok {
		return Rule{}, fmt.Errorf("%w: fragment %q at offset %d: want trigger=value", ErrBadSpec, trigger, triggerAt)
	}
	r := Rule{Site: Site(site)}
	switch key {
	case "rate":
		f, err := strconv.ParseFloat(value, 64)
		if err != nil || f <= 0 || f > 1 {
			return Rule{}, fmt.Errorf("%w: fragment %q at offset %d: rate must be in (0,1]", ErrBadSpec, trigger, triggerAt)
		}
		r.Rate = f
	case "nth":
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil || n == 0 {
			return Rule{}, fmt.Errorf("%w: fragment %q at offset %d: nth must be a positive integer", ErrBadSpec, trigger, triggerAt)
		}
		r.Nth = n
	case "every":
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil || n == 0 {
			return Rule{}, fmt.Errorf("%w: fragment %q at offset %d: every must be a positive integer", ErrBadSpec, trigger, triggerAt)
		}
		r.Every = n
	default:
		return Rule{}, fmt.Errorf("%w: fragment %q at offset %d: unknown trigger %q (want rate, nth, or every)", ErrBadSpec, trigger, triggerAt, key)
	}
	return r, nil
}

// FromSpec builds an injector directly from a spec string and seed. An
// empty spec returns a nil injector, which is valid and inert.
func FromSpec(seed int64, spec string) (*Injector, error) {
	rules, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(seed, rules...)
}

func siteList() string {
	names := make([]string, 0, len(knownSites))
	for _, s := range Sites() {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}
