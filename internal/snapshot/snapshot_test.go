package snapshot

import (
	"errors"
	"testing"

	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/vmm"
)

func newStore(t *testing.T) (*Store, *simtime.Clock) {
	t.Helper()
	clock := simtime.NewClock()
	return NewStore(clock, CostModel{}), clock
}

func TestCreateChargesTime(t *testing.T) {
	s, clock := newStore(t)
	snap, err := s.Create(vmm.Config{VCPUs: 1, MemoryMB: 512}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() == 0 {
		t.Fatal("create charged no virtual time")
	}
	if snap.TotalPages != 512*256 { // 512 MB / 4 KB
		t.Fatalf("TotalPages = %d, want %d", snap.TotalPages, 512*256)
	}
	if snap.WorkingSetPages != int(float64(snap.TotalPages)*0.05) {
		t.Fatalf("WorkingSetPages = %d", snap.WorkingSetPages)
	}
	if snap.SizeBytes() != int64(snap.TotalPages)*PageSize {
		t.Fatalf("SizeBytes = %d", snap.SizeBytes())
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	got, err := s.Get(snap.ID)
	if err != nil || got != snap {
		t.Fatalf("Get = %v, %v", got, err)
	}
}

func TestCreateValidation(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Create(vmm.Config{VCPUs: 0, MemoryMB: 512}, 0.05); err == nil {
		t.Fatal("zero vCPUs accepted")
	}
	if _, err := s.Create(vmm.Config{VCPUs: 1, MemoryMB: 512}, 0); !errors.Is(err, ErrBadWorkingSet) {
		t.Fatalf("ws=0 err = %v", err)
	}
	if _, err := s.Create(vmm.Config{VCPUs: 1, MemoryMB: 512}, 1.5); !errors.Is(err, ErrBadWorkingSet) {
		t.Fatalf("ws=1.5 err = %v", err)
	}
}

func TestRestoreCostCalibration(t *testing.T) {
	// Table 1: restore ≈ 1300 µs for the 512 MB / 5% working-set microVM.
	s, _ := newStore(t)
	snap, err := s.Create(vmm.Config{VCPUs: 1, MemoryMB: 512}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cost := s.RestoreCost(snap)
	if cost < 1200*simtime.Microsecond || cost > 1400*simtime.Microsecond {
		t.Fatalf("restore cost = %v, want ≈1300µs", cost)
	}
}

func TestRestoreCreatesSandbox(t *testing.T) {
	s, clock := newStore(t)
	h, err := vmm.New(vmm.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Create(vmm.Config{VCPUs: 2, MemoryMB: 256}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	sb, err := s.Restore(h, snap)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now().Sub(before) != s.RestoreCost(snap) {
		t.Fatal("restore charged wrong cost")
	}
	if sb.NumVCPUs() != 2 || sb.MemoryMB() != 256 {
		t.Fatalf("restored sandbox %d vCPUs / %d MB", sb.NumVCPUs(), sb.MemoryMB())
	}
	if sb.State() != vmm.StateRunning {
		t.Fatalf("state = %v", sb.State())
	}
}

func TestRestoreUnknownSnapshot(t *testing.T) {
	s, clock := newStore(t)
	h, err := vmm.New(vmm.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	bogus := &Snapshot{ID: "nope", Config: vmm.Config{VCPUs: 1, MemoryMB: 64}}
	if _, err := s.Restore(h, bogus); !errors.Is(err, ErrUnknownSnapshot) {
		t.Fatalf("err = %v, want ErrUnknownSnapshot", err)
	}
}

func TestDelete(t *testing.T) {
	s, _ := newStore(t)
	snap, err := s.Create(vmm.Config{VCPUs: 1, MemoryMB: 64}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(snap.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(snap.ID); !errors.Is(err, ErrUnknownSnapshot) {
		t.Fatalf("double delete err = %v", err)
	}
	if _, err := s.Get(snap.ID); !errors.Is(err, ErrUnknownSnapshot) {
		t.Fatalf("Get after delete err = %v", err)
	}
}

func TestTinyMemoryStillHasOnePage(t *testing.T) {
	s, _ := newStore(t)
	snap, err := s.Create(vmm.Config{VCPUs: 1, MemoryMB: 1}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if snap.WorkingSetPages < 1 {
		t.Fatal("working set rounded to zero pages")
	}
}
