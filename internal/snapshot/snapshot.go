// Package snapshot models the snapshot/restore baseline of the paper's
// evaluation (the "restore" scenario, Table 1 and Figure 4).
//
// The paper uses FaaSnap, which restores a microVM from a snapshot by
// eagerly mapping the function's working set and lazily faulting the rest.
// The dominant restore cost is therefore proportional to the working-set
// page count, plus a fixed VM-state restoration cost. This package models
// exactly that: a snapshot records the sandbox configuration and its
// working set, and Restore charges base + perPage·workingSetPages virtual
// time — calibrated to the paper's 1300 µs for a 512 MB microVM.
package snapshot

import (
	"errors"
	"fmt"

	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/vmm"
)

// PageSize is the guest page granularity.
const PageSize = 4096

// Errors reported by the store.
var (
	ErrUnknownSnapshot = errors.New("snapshot: unknown snapshot")
	ErrBadWorkingSet   = errors.New("snapshot: working-set fraction out of (0,1]")
)

// CostModel holds the restore-path constants.
type CostModel struct {
	// CreateBase is the fixed cost of cutting a snapshot (VM state
	// serialization).
	CreateBase simtime.Duration
	// CreatePerPage is the per-dirty-page cost of writing memory out.
	CreatePerPage simtime.Duration
	// RestoreBase is the fixed cost of restoring VM state.
	RestoreBase simtime.Duration
	// RestorePerPage is the per-working-set-page mapping cost.
	RestorePerPage simtime.Duration
}

// DefaultCostModel calibrates restore to ≈1300 µs for a 512 MB sandbox
// with a 5% working set (6554 pages): 250 µs + 6554·160 ns ≈ 1.3 ms.
func DefaultCostModel() CostModel {
	return CostModel{
		CreateBase:     500 * simtime.Microsecond,
		CreatePerPage:  220 * simtime.Nanosecond,
		RestoreBase:    250 * simtime.Microsecond,
		RestorePerPage: 160 * simtime.Nanosecond,
	}
}

// Snapshot is one stored sandbox image.
type Snapshot struct {
	// ID names the snapshot.
	ID string
	// Config is the sandbox configuration the snapshot restores into.
	Config vmm.Config
	// WorkingSetPages is the number of pages FaaSnap-style restore maps
	// eagerly.
	WorkingSetPages int
	// TotalPages is the full guest memory size in pages.
	TotalPages int
	// CreatedAt is the virtual instant the snapshot was cut.
	CreatedAt simtime.Time
}

// SizeBytes returns the on-disk snapshot size (full memory image).
func (s *Snapshot) SizeBytes() int64 { return int64(s.TotalPages) * PageSize }

// Store keeps snapshots and charges virtual time for create/restore.
type Store struct {
	clock  *simtime.Clock
	costs  CostModel
	snaps  map[string]*Snapshot
	nextID int
}

// NewStore returns an empty snapshot store. A zero costs value selects
// DefaultCostModel.
func NewStore(clock *simtime.Clock, costs CostModel) *Store {
	if costs == (CostModel{}) {
		costs = DefaultCostModel()
	}
	return &Store{
		clock: clock,
		costs: costs,
		snaps: make(map[string]*Snapshot),
	}
}

// Len returns the number of stored snapshots.
func (s *Store) Len() int { return len(s.snaps) }

// Create cuts a snapshot of a sandbox configuration with the given
// working-set fraction (0,1], charging the create cost.
func (s *Store) Create(cfg vmm.Config, workingSetFraction float64) (*Snapshot, error) {
	if cfg.VCPUs < 1 || cfg.MemoryMB <= 0 {
		return nil, fmt.Errorf("snapshot: invalid config %+v", cfg)
	}
	if workingSetFraction <= 0 || workingSetFraction > 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadWorkingSet, workingSetFraction)
	}
	totalPages := cfg.MemoryMB * (1 << 20) / PageSize
	wsPages := int(float64(totalPages) * workingSetFraction)
	if wsPages < 1 {
		wsPages = 1
	}
	s.clock.Advance(s.costs.CreateBase + simtime.Duration(wsPages)*s.costs.CreatePerPage)

	s.nextID++
	snap := &Snapshot{
		ID:              fmt.Sprintf("snap%d", s.nextID),
		Config:          cfg,
		WorkingSetPages: wsPages,
		TotalPages:      totalPages,
		CreatedAt:       s.clock.Now(),
	}
	s.snaps[snap.ID] = snap
	return snap, nil
}

// Get looks a snapshot up by id.
func (s *Store) Get(id string) (*Snapshot, error) {
	snap, ok := s.snaps[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSnapshot, id)
	}
	return snap, nil
}

// RestoreCost returns the virtual time a restore of snap will take.
func (s *Store) RestoreCost(snap *Snapshot) simtime.Duration {
	return s.costs.RestoreBase + simtime.Duration(snap.WorkingSetPages)*s.costs.RestorePerPage
}

// Restore charges the restore cost and returns a running sandbox created
// on the hypervisor from the snapshot's configuration.
func (s *Store) Restore(h *vmm.Hypervisor, snap *Snapshot) (*vmm.Sandbox, error) {
	if _, ok := s.snaps[snap.ID]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSnapshot, snap.ID)
	}
	s.clock.Advance(s.RestoreCost(snap))
	return h.CreateSandbox(snap.Config)
}

// Delete removes a snapshot.
func (s *Store) Delete(id string) error {
	if _, ok := s.snaps[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSnapshot, id)
	}
	delete(s.snaps, id)
	return nil
}
