// Package horse is a reproduction of "HORSE: Ultra-low latency workloads
// on FaaS platforms" (Mvondo, Taïani, Bromberg — Middleware '24) as a
// self-contained Go library.
//
// HORSE is a hot-resume fast path for paused FaaS sandboxes hosting
// ultra-low-latency (uLL) functions. It combines two mechanisms:
//
//   - P²SM, a parallel precomputed sorted merge that splices a paused
//     sandbox's pre-sorted vCPU list into a reserved run queue in O(1),
//     independent of either list's length; and
//   - load-update coalescing, which replaces the n per-vCPU affine load
//     updates L(x)=αx+β with the single closed form αⁿx + β(1-αⁿ)/(1-α),
//     precomputed at pause time.
//
// This package is the public facade: it exposes the FaaS platform (with
// the paper's four start modes — cold, restore, warm, and HORSE), the
// resume policies of the evaluation's ablation (vanil/ppsm/coal/horse),
// the uLL workloads of §2, and the experiment harnesses that regenerate
// every table and figure of the paper. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// # Quickstart
//
//	p, err := horse.NewPlatform()
//	// handle err
//	fn := horse.NewScanFunction(42)
//	_, err = p.Register(fn, horse.SandboxSpec{VCPUs: 1, MemoryMB: 512})
//	// handle err
//	err = p.Provision(fn.Name(), 1, horse.PolicyHorse)
//	// handle err
//	inv, err := p.Trigger(fn.Name(), horse.ModeHorse, payload)
//	// inv.Init is ≈150ns of virtual time, regardless of vCPU count.
package horse

import (
	"io"
	"net/http"

	"github.com/horse-faas/horse/internal/cluster"
	"github.com/horse-faas/horse/internal/core"
	"github.com/horse-faas/horse/internal/experiments"
	"github.com/horse-faas/horse/internal/faas"
	"github.com/horse-faas/horse/internal/faultinject"
	"github.com/horse-faas/horse/internal/loadgen"
	"github.com/horse-faas/horse/internal/simtime"
	"github.com/horse-faas/horse/internal/telemetry"
	"github.com/horse-faas/horse/internal/tenant"
	"github.com/horse-faas/horse/internal/trace"
	"github.com/horse-faas/horse/internal/trigtrace"
	"github.com/horse-faas/horse/internal/vmm"
	"github.com/horse-faas/horse/internal/workload"
)

// Core platform types.
type (
	// Platform is the FaaS control plane: function registry, warm pools,
	// keep-alive, and the four trigger start modes.
	Platform = faas.Platform
	// PlatformOptions configures NewPlatform.
	PlatformOptions = faas.Options
	// SandboxSpec sizes a deployment's sandboxes.
	SandboxSpec = faas.SandboxSpec
	// Deployment is a registered function plus its sandbox pool.
	Deployment = faas.Deployment
	// Invocation is the outcome of one trigger: virtual init/exec times
	// plus the function's real output.
	Invocation = faas.Invocation
	// StartMode selects how a trigger obtains its sandbox.
	StartMode = faas.StartMode
	// Policy selects a pause/resume implementation (the Figure 3 setups).
	Policy = core.Policy
	// Function is a deployable FaaS function.
	Function = workload.Function
	// Category classifies functions by execution-time class (paper §2).
	Category = workload.Category

	// Hypervisor is the simulated virtualization system, for callers who
	// drive pause/resume directly rather than through the platform.
	Hypervisor = vmm.Hypervisor
	// HypervisorOptions configures NewHypervisor.
	HypervisorOptions = vmm.Options
	// SandboxConfig sizes a directly created sandbox.
	SandboxConfig = vmm.Config
	// Sandbox is one microVM.
	Sandbox = vmm.Sandbox
	// ResumeEngine is the HORSE engine over a hypervisor.
	ResumeEngine = core.Engine
	// ResumeReport is a resume's per-step cost breakdown.
	ResumeReport = vmm.ResumeReport
	// PauseReport is a pause's per-step cost breakdown.
	PauseReport = vmm.PauseReport
	// CostModel holds the virtual-time calibration (DESIGN.md §5).
	CostModel = vmm.CostModel

	// Time is a virtual-clock instant; Duration a span of virtual time.
	Time = simtime.Time
	// Duration is a span of virtual time in nanoseconds.
	Duration = simtime.Duration
)

// Start modes (paper §2 / §5.3).
const (
	ModeCold    = faas.ModeCold
	ModeRestore = faas.ModeRestore
	ModeWarm    = faas.ModeWarm
	ModeHorse   = faas.ModeHorse
)

// Resume policies (the four setups of Figure 3).
const (
	PolicyVanilla = core.Vanilla
	PolicyPPSM    = core.PPSM
	PolicyCoal    = core.Coal
	PolicyHorse   = core.Horse
)

// Workload categories (paper §2).
const (
	Category1    = workload.Category1
	Category2    = workload.Category2
	Category3    = workload.Category3
	CategoryLong = workload.CategoryLong
)

// Virtual time units.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
)

// NewPlatform builds a FaaS platform over a fresh default hypervisor.
func NewPlatform() (*Platform, error) {
	return faas.New(faas.Options{})
}

// NewPlatformWith builds a platform with explicit options.
func NewPlatformWith(opts PlatformOptions) (*Platform, error) {
	return faas.New(opts)
}

// NewHypervisor builds a standalone simulated virtualization system.
func NewHypervisor(opts HypervisorOptions) (*Hypervisor, error) {
	return vmm.New(opts)
}

// NewResumeEngine builds a HORSE engine over a hypervisor.
func NewResumeEngine(h *Hypervisor) *ResumeEngine {
	return core.NewEngine(h)
}

// DefaultCostModel returns the calibrated virtual-time constants for the
// Firecracker (Linux KVM) flavor of the prototype.
func DefaultCostModel() CostModel { return vmm.DefaultCostModel() }

// XenCostModel returns the calibration for the Xen 4.17 flavor.
func XenCostModel() CostModel { return vmm.XenCostModel() }

// Workload constructors (paper §2 and §5.4).

// Workload payload types (JSON-encoded as trigger payloads).
type (
	// FirewallRequest is the firewall's input header.
	FirewallRequest = workload.FirewallRequest
	// FirewallDecision is the firewall's verdict.
	FirewallDecision = workload.FirewallDecision
	// NATPacket is the NAT's input header.
	NATPacket = workload.NATPacket
	// NATResult is the NAT's translated header.
	NATResult = workload.NATResult
	// ScanRequest is the array scan's threshold parameter.
	ScanRequest = workload.ScanRequest
	// ScanResult is the array scan's matching indexes.
	ScanResult = workload.ScanResult
	// ThumbnailRequest names a source image and target edge.
	ThumbnailRequest = workload.ThumbnailRequest
	// ThumbnailResult describes the generated thumbnail.
	ThumbnailResult = workload.ThumbnailResult
)

// NewFirewallFunction returns the Category-1 stateless firewall with a
// representative NFV allow list.
func NewFirewallFunction() Function { return workload.DefaultFirewall() }

// NewNATFunction returns the Category-2 NAT header rewriter with a
// representative rule set.
func NewNATFunction() Function { return workload.DefaultNAT() }

// NewScanFunction returns the Category-3 array index scan over a
// deterministic 3000-integer array derived from seed.
func NewScanFunction(seed int64) Function { return workload.NewScan(seed) }

// NewThumbnailFunction returns the long-running SEBS-style thumbnail
// generator of §5.4.
func NewThumbnailFunction() Function { return workload.NewThumbnail() }

// Experiment harnesses: one per table/figure. See cmd/horsebench for a
// CLI that renders them.
type (
	// InitBreakdown is the Table 1 / Figure 1 / Figure 4 result.
	InitBreakdown = experiments.Table1Result
	// Fig2Point is one vCPU count of the Figure 2 resume breakdown.
	Fig2Point = experiments.Fig2Point
	// Fig3Point is one vCPU count of the Figure 3 policy comparison.
	Fig3Point = experiments.Fig3Point
	// Fig3Summary is Figure 3's headline factors.
	Fig3Summary = experiments.Fig3Summary
	// OverheadConfig shapes the §5.2 overhead experiment.
	OverheadConfig = experiments.OverheadConfig
	// OverheadResult reports HORSE's §5.2 overheads at one vCPU count.
	OverheadResult = experiments.OverheadResult
	// ColocationConfig shapes the §5.4 colocation experiment.
	ColocationConfig = experiments.ColocationConfig
	// ColocationComparison pairs §5.4's vanilla and HORSE runs.
	ColocationComparison = experiments.ColocationComparison
	// ULLQueueSweepConfig shapes the ull_runqueue-count ablation (§4.1.3).
	ULLQueueSweepConfig = experiments.ULLQueueSweepConfig
	// ULLQueueSweepPoint is the ablation outcome at one queue count.
	ULLQueueSweepPoint = experiments.ULLQueueSweepPoint
	// DispatchResult describes one workload on the 1µs-quantum queue.
	DispatchResult = experiments.DispatchResult
	// ClaimResult is one verified reproduction claim.
	ClaimResult = experiments.ClaimResult

	// TraceConfig shapes a synthetic Azure-style trace.
	TraceConfig = trace.SynthConfig
	// Trace is a set of per-minute function invocation counts.
	Trace = trace.Trace
	// Arrival is one expanded trace invocation instant.
	Arrival = trace.Arrival
	// TraceStats summarizes a trace's arrival process.
	TraceStats = trace.Stats

	// PayloadFunc supplies trigger payloads during a trace replay.
	PayloadFunc = faas.PayloadFunc
	// ReplayReport summarizes a Platform.Replay run.
	ReplayReport = faas.ReplayReport
	// PoolStats summarizes a deployment warm pool.
	PoolStats = faas.PoolStats
	// DeploymentStats summarizes a deployment's served invocations.
	DeploymentStats = faas.DeploymentStats

	// KeepAlivePolicy sizes the idle lifetime of pooled warm sandboxes.
	KeepAlivePolicy = faas.KeepAlivePolicy
	// FixedKeepAlive keeps every idle sandbox for the same duration.
	FixedKeepAlive = faas.FixedKeepAlive
	// HybridKeepAlive learns the window from inter-invocation gaps.
	HybridKeepAlive = faas.HybridKeepAlive
)

// RunTable1 regenerates Table 1 (init/exec per category for cold,
// restore, and warm starts).
func RunTable1() (InitBreakdown, error) {
	return experiments.RunInitBreakdown(experiments.Table1Scenarios())
}

// RunFig4 regenerates Figure 4 (Table 1's scenarios plus HORSE).
func RunFig4() (InitBreakdown, error) {
	return experiments.RunInitBreakdown(experiments.Fig4Scenarios())
}

// RunFig2 regenerates Figure 2 (vanilla resume breakdown vs vCPUs).
// A nil sweep selects the paper's 1..36 range.
func RunFig2(vcpus []int) ([]Fig2Point, error) { return experiments.RunFig2(vcpus) }

// RunFig3 regenerates Figure 3 (resume time of the four policies vs
// vCPUs). A nil sweep selects the paper's 1..36 range.
func RunFig3(vcpus []int) ([]Fig3Point, error) { return experiments.RunFig3(vcpus) }

// SummarizeFig3 extracts the headline factors from a Figure 3 sweep.
func SummarizeFig3(points []Fig3Point) (Fig3Summary, error) {
	return experiments.SummarizeFig3(points)
}

// RunOverhead regenerates the §5.2 CPU/memory overhead results.
func RunOverhead(cfg OverheadConfig, vcpus []int) ([]OverheadResult, error) {
	return experiments.RunOverhead(cfg, vcpus)
}

// RunColocation regenerates the §5.4 colocation experiment: thumbnail
// tail latency under vanilla vs HORSE with periodic uLL resumes.
func RunColocation(cfg ColocationConfig) (ColocationComparison, error) {
	return experiments.RunColocation(cfg)
}

// RunColocationSweep repeats the §5.4 comparison across uLL sandbox
// sizes (the paper sweeps 1..36 vCPUs). A nil sweep selects the default
// range.
func RunColocationSweep(cfg ColocationConfig, vcpus []int) ([]ColocationComparison, error) {
	return experiments.RunColocationSweep(cfg, vcpus)
}

// RunULLQueueSweep runs the §4.1.3 ablation: how the number of reserved
// ull_runqueues affects load balancing and the background structure-
// maintenance cost, while the resume fast path stays constant. A nil
// sweep selects 1, 2, 4, and 8 queues.
func RunULLQueueSweep(cfg ULLQueueSweepConfig, queueCounts []int) ([]ULLQueueSweepPoint, error) {
	return experiments.RunULLQueueSweep(cfg, queueCounts)
}

// RunULLDispatch demonstrates §4.1.3's 1µs-timeslice claim: concurrent
// uLL workloads dispatched on one reserved queue.
func RunULLDispatch() ([]DispatchResult, error) {
	return experiments.RunULLDispatch()
}

// VerifyClaims runs every experiment and checks the results against the
// paper's claims — the machine-checkable version of EXPERIMENTS.md.
func VerifyClaims() ([]ClaimResult, error) { return experiments.VerifyClaims() }

// Observability (see DESIGN.md "Observability"): a virtual-clock span
// tracer, a concurrent metrics registry, and the Perfetto/Prometheus
// exporters. All tracer and registry operations are nil-safe no-ops, so
// instrumented code needs no conditional wiring.
type (
	// Tracer records hierarchical spans against virtual time.
	Tracer = telemetry.Tracer
	// TracerOptions configures NewTracer.
	TracerOptions = telemetry.TracerOptions
	// Span is one finished span (with its per-step events).
	Span = telemetry.Span
	// SpanRef is a live handle onto an open span.
	SpanRef = telemetry.SpanRef
	// MetricsRegistry is the concurrent named-instrument registry.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time registry export.
	MetricsSnapshot = telemetry.Snapshot
	// ExperimentTelemetry bundles the sinks the traced experiment
	// harnesses thread into every hypervisor they build.
	ExperimentTelemetry = experiments.Telemetry
)

// NewTracer builds a span tracer (ring-buffered, enabled unless
// opts.Disabled).
func NewTracer(opts TracerOptions) *Tracer { return telemetry.NewTracer(opts) }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// WritePerfettoTrace emits spans as Chrome/Perfetto trace-event JSON
// (load the file at https://ui.perfetto.dev).
func WritePerfettoTrace(w io.Writer, spans []Span) error {
	return telemetry.WritePerfetto(w, spans)
}

// WritePrometheusText emits a snapshot in Prometheus text exposition
// format 0.0.4.
func WritePrometheusText(w io.Writer, snap MetricsSnapshot) error {
	return telemetry.WritePrometheus(w, snap)
}

// MetricsHandler serves a registry as a /metrics-style endpoint
// (Prometheus text by default, JSON via ?format=json).
func MetricsHandler(r *MetricsRegistry) http.Handler { return telemetry.Handler(r) }

// RunFig2Traced is RunFig2 with telemetry sinks threaded into every run.
func RunFig2Traced(vcpus []int, tel ExperimentTelemetry) ([]Fig2Point, error) {
	return experiments.RunFig2Traced(vcpus, tel)
}

// RunFig3Traced is RunFig3 with telemetry sinks threaded into every run.
func RunFig3Traced(vcpus []int, tel ExperimentTelemetry) ([]Fig3Point, error) {
	return experiments.RunFig3Traced(vcpus, tel)
}

// Robustness (DESIGN.md §10): deterministic fault injection and the
// trigger path's graceful-degradation machinery.
type (
	// FaultInjector raises seed-deterministic faults at named control-
	// plane sites; thread one through PlatformOptions.Faults.
	FaultInjector = faultinject.Injector
	// FaultRule arms one injection site with one trigger (rate, nth, or
	// every).
	FaultRule = faultinject.Rule
	// FaultSite names an injection point (create, pause, resume,
	// restore, invoke, destroy).
	FaultSite = faultinject.Site
	// FaultStats counts one site's visits and injected faults.
	FaultStats = faultinject.Stats
	// FallbackConfig configures Trigger's degradation chain and the
	// contention retry loop (PlatformOptions.Fallback).
	FallbackConfig = faas.FallbackConfig
	// TriggerFailure is one failed trigger recorded by a fault-surviving
	// replay (ReplayReport.Failures).
	TriggerFailure = faas.TriggerFailure
)

// Fault-injection sites.
const (
	FaultSiteCreate    = faultinject.SiteCreate
	FaultSitePause     = faultinject.SitePause
	FaultSiteResume    = faultinject.SiteResume
	FaultSiteRestore   = faultinject.SiteRestore
	FaultSiteInvoke    = faultinject.SiteInvoke
	FaultSiteDestroy   = faultinject.SiteDestroy
	FaultSiteNodeFail  = faultinject.SiteNodeFail
	FaultSiteNodeDrain = faultinject.SiteNodeDrain
)

// ErrFaultInjected is the sentinel every injected fault matches with
// errors.Is.
var ErrFaultInjected = faultinject.ErrInjected

// NewFaultInjector builds an injector from a seed and explicit rules.
func NewFaultInjector(seed int64, rules ...FaultRule) (*FaultInjector, error) {
	return faultinject.New(seed, rules...)
}

// ParseFaultSpec parses the -faults flag syntax
// ("resume:rate=0.05,pause:nth=3,invoke:every=100") into rules.
func ParseFaultSpec(spec string) ([]FaultRule, error) { return faultinject.ParseSpec(spec) }

// FaultInjectorFromSpec builds an injector directly from a spec string;
// an empty spec yields a nil (inert) injector.
func FaultInjectorFromSpec(seed int64, spec string) (*FaultInjector, error) {
	return faultinject.FromSpec(seed, spec)
}

// DefaultFallbackChain returns the default degradation order, hottest
// first: horse → warm → restore → cold.
func DefaultFallbackChain() []StartMode {
	out := make([]StartMode, len(faas.DefaultFallbackChain))
	copy(out, faas.DefaultFallbackChain)
	return out
}

// SynthesizeTrace generates a deterministic Azure-like invocation trace.
func SynthesizeTrace(cfg TraceConfig) *Trace { return trace.Synthesize(cfg) }

// ParseTrace reads a trace in the Azure public dataset's per-minute CSV
// layout.
func ParseTrace(r io.Reader) (*Trace, error) { return trace.ParseCSV(r) }

// WriteTrace emits a trace in the same CSV layout ParseTrace reads.
func WriteTrace(w io.Writer, t *Trace) error { return trace.WriteCSV(w, t) }

// TraceArrivals expands a trace's per-minute counts into sorted arrival
// instants, deterministically by seed.
func TraceArrivals(t *Trace, seed int64) []Arrival { return t.Arrivals(seed) }

// ComputeTraceStats summarizes a trace's arrival process.
func ComputeTraceStats(t *Trace) (TraceStats, error) { return trace.ComputeStats(t) }

// Cluster scale-out (DESIGN.md §11): a deterministic multi-node
// deployment behind pluggable placement policies, fed by an open-loop
// load generator on the virtual clock. See cmd/horsesim's cluster
// subcommand for the CLI front end.
type (
	// Cluster is a deterministic multi-node HORSE deployment: N
	// platform nodes behind a Router, with cluster-wide pool operations
	// and failover on node failure or drain.
	Cluster = cluster.Cluster
	// ClusterOptions configures NewCluster.
	ClusterOptions = cluster.Options
	// ClusterNodeSpec sizes one node's capacity: vCPUs, memory, and the
	// reserved uLL slots that make it eligible for HORSE pools.
	ClusterNodeSpec = cluster.NodeSpec
	// ClusterNode is one node: a platform plus capacity and health.
	ClusterNode = cluster.Node
	// NodeHealth is a node's lifecycle state (up, draining, failed).
	NodeHealth = cluster.Health
	// ClusterRunConfig drives one open-loop cluster experiment.
	ClusterRunConfig = cluster.RunConfig
	// ClusterReport aggregates one cluster run: per-mode and per-node
	// latency distributions, failover reasons, and SLO attainment.
	ClusterReport = cluster.Report
	// ClusterPlacement records where one trigger was served and what it
	// cost end to end (wait + init + exec).
	ClusterPlacement = cluster.Placement

	// LoadWorkload binds one function name to an arrival process and a
	// start-mode mix (one clause of the -arrivals flag).
	LoadWorkload = loadgen.Workload
	// ArrivalSpec is one open-loop arrival process (poisson or onoff).
	ArrivalSpec = loadgen.Spec
	// StartModeMix is a workload's distribution over start modes.
	StartModeMix = loadgen.ModeMix
	// LoadGenerator produces open-loop arrivals on the virtual clock.
	LoadGenerator = loadgen.Generator
	// LoadGeneratorOptions configures NewLoadGenerator.
	LoadGeneratorOptions = loadgen.Options
)

// Placement policies (ClusterOptions.Policy).
const (
	PlacementRoundRobin  = cluster.PolicyRoundRobin
	PlacementLeastLoaded = cluster.PolicyLeastLoaded
	PlacementULLAffinity = cluster.PolicyULLAffinity
)

// Node health states.
const (
	NodeUp       = cluster.Up
	NodeDraining = cluster.Draining
	NodeFailed   = cluster.Failed
)

// Per-trigger tracing (DESIGN.md §12): deterministic trace IDs, a
// causally linked span tree per trigger, tail-latency attribution by
// stage and start mode, and an SLO flight recorder that retains the
// full span tree for every violating (and worst-K) trigger.
type (
	// TraceRecorder aggregates per-trigger traces: attribution table,
	// violation counts, and flight-recorder retention. Cluster.Run arms
	// one automatically; pass one via ClusterOptions.Trace to size the
	// retention or share it across runs.
	TraceRecorder = trigtrace.Recorder
	// TraceRecorderOptions configures NewTraceRecorder.
	TraceRecorderOptions = trigtrace.RecorderOptions
	// TriggerTrace is one trigger's span tree: typed stage records plus
	// the end-to-end outcome.
	TriggerTrace = trigtrace.TriggerTrace
	// TraceStageLatency is one attribution row: per-stage, per-mode
	// count/total/p50/p99/max.
	TraceStageLatency = trigtrace.StageLatency
)

// NewTraceRecorder builds a per-trigger trace recorder.
func NewTraceRecorder(opts TraceRecorderOptions) *TraceRecorder {
	return trigtrace.NewRecorder(opts)
}

// WriteTriggerPerfetto emits trigger span trees as Chrome/Perfetto
// trace-event JSON (one track per trigger, flow-linked stages), loadable
// in ui.perfetto.dev or chrome://tracing. Output is deterministic for a
// given trace set.
func WriteTriggerPerfetto(w io.Writer, traces []*TriggerTrace) error {
	return trigtrace.WritePerfetto(w, traces)
}

// NewCluster builds a multi-node deployment. Every node wraps its own
// platform; the placement policy, seed, fault injector, and metrics
// registry come from opts.
func NewCluster(opts ClusterOptions) (*Cluster, error) { return cluster.New(opts) }

// PlacementPolicies returns the policy names NewCluster accepts.
func PlacementPolicies() []string { return cluster.Policies() }

// ParseWorkloads parses the -arrivals flag syntax: semicolon-separated
// function=spec clauses, e.g.
// "scan=poisson:rate=2000/s;thumbnail=onoff:on=10ms,off=90ms,rate=500/s,mode=warm".
func ParseWorkloads(s string) ([]LoadWorkload, error) { return loadgen.ParseWorkloads(s) }

// ParseArrivalSpec parses one arrival-process clause, e.g.
// "poisson:rate=500/s" or "onoff:on=1ms,off=9ms,rate=2000/s".
func ParseArrivalSpec(s string) (ArrivalSpec, error) { return loadgen.ParseSpec(s) }

// NewLoadGenerator builds an open-loop arrival generator with one PRNG
// stream per workload, all derived from seed.
func NewLoadGenerator(seed int64, workloads []LoadWorkload, opts LoadGeneratorOptions) (*LoadGenerator, error) {
	return loadgen.New(seed, workloads, opts)
}

// Multi-tenancy (DESIGN.md §14): per-tenant admission control and
// weighted-fair sharing of the reserved uLL slots.
type (
	// TenantSpec is one tenant's contract — scheduling weight, trigger
	// rate limit, uLL slot share, memory quota — one clause of the
	// -tenants flag (ClusterOptions.Tenants).
	TenantSpec = tenant.Spec
	// TenantVerdict is one admission decision: admitted, or rejected by
	// the rate gate or the uLL fair-share gate.
	TenantVerdict = tenant.Verdict
	// ClusterTenantSummary is one tenant's accounting row in a
	// ClusterReport: entitlement, slots held, admission outcomes, and
	// SLO attainment.
	ClusterTenantSummary = cluster.TenantSummary
	// LoadPreset is a named, ready-made experiment scenario: an
	// -arrivals workload mix plus the -tenants contract it stresses.
	LoadPreset = loadgen.Preset
)

// ParseTenants parses the -tenants flag syntax: semicolon-separated
// name:key=value clauses, e.g.
// "steady:weight=4,slots=3;greedy:weight=1,rate=2500/s,burst=50".
func ParseTenants(s string) ([]TenantSpec, error) { return tenant.ParseSpecs(s) }

// FormatTenants renders tenant specs back in ParseTenants syntax.
func FormatTenants(specs []TenantSpec) string { return tenant.FormatSpecs(specs) }

// LoadPresets returns every named scenario preset in display order.
func LoadPresets() []LoadPreset { return loadgen.Presets() }

// LookupLoadPreset resolves a scenario preset by name.
func LookupLoadPreset(name string) (LoadPreset, bool) { return loadgen.LookupPreset(name) }
