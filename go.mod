module github.com/horse-faas/horse

go 1.22
