// Quickstart: deploy an ultra-low-latency function and compare a plain
// warm start against the HORSE hot resume.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"

	horse "github.com/horse-faas/horse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := horse.NewPlatform()
	if err != nil {
		return err
	}

	// The Category-3 workload: indexes of array elements above a
	// threshold, ≈700ns of execution (paper §2).
	fn := horse.NewScanFunction(42)
	if _, err := p.Register(fn, horse.SandboxSpec{VCPUs: 1, MemoryMB: 512}); err != nil {
		return err
	}

	// Provision one sandbox armed for each path: a plain warm sandbox
	// (vanilla resume) and a HORSE-armed uLL sandbox.
	if err := p.Provision(fn.Name(), 1, horse.PolicyVanilla); err != nil {
		return err
	}
	if err := p.Provision(fn.Name(), 1, horse.PolicyHorse); err != nil {
		return err
	}

	payload, err := json.Marshal(horse.ScanRequest{Threshold: 9000})
	if err != nil {
		return err
	}

	warm, err := p.Trigger(fn.Name(), horse.ModeWarm, payload)
	if err != nil {
		return err
	}
	hot, err := p.Trigger(fn.Name(), horse.ModeHorse, payload)
	if err != nil {
		return err
	}

	var res horse.ScanResult
	if err := json.Unmarshal(hot.Output, &res); err != nil {
		return err
	}

	fmt.Printf("scan found %d elements above the threshold\n\n", res.Count)
	fmt.Printf("%-8s %12s %12s %8s\n", "mode", "init", "exec", "init%")
	fmt.Printf("%-8s %12v %12v %7.2f%%\n", "warm", warm.Init, warm.Exec, warm.InitPercent())
	fmt.Printf("%-8s %12v %12v %7.2f%%\n", "horse", hot.Init, hot.Exec, hot.InitPercent())
	fmt.Printf("\nHORSE cut sandbox initialization from %v to %v (%.1fx)\n",
		warm.Init, hot.Init, float64(warm.Init)/float64(hot.Init))
	return nil
}
