// NFV pipeline: the paper's motivating use case. A stream of packet
// headers passes through two ultra-low-latency functions — a stateless
// firewall (Category 1) and a NAT rewriter (Category 2) — each triggered
// as a HORSE hot resume. The example prints per-packet decisions and the
// end-to-end virtual latency of the two-stage chain.
//
//	go run ./examples/nfv
package main

import (
	"encoding/json"
	"fmt"
	"log"

	horse "github.com/horse-faas/horse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type packet struct {
	SrcIP   string
	DstIP   string
	DstPort uint16
}

func run() error {
	p, err := horse.NewPlatform()
	if err != nil {
		return err
	}
	for _, fn := range []horse.Function{
		horse.NewFirewallFunction(),
		horse.NewNATFunction(),
	} {
		if _, err := p.Register(fn, horse.SandboxSpec{VCPUs: 1, MemoryMB: 256}); err != nil {
			return err
		}
		if err := p.Provision(fn.Name(), 1, horse.PolicyHorse); err != nil {
			return err
		}
	}

	packets := []packet{
		{SrcIP: "10.4.5.6", DstIP: "203.0.113.10", DstPort: 80},
		{SrcIP: "192.168.1.9", DstIP: "203.0.113.10", DstPort: 443},
		{SrcIP: "8.8.8.8", DstIP: "203.0.113.20", DstPort: 53},
		{SrcIP: "172.20.0.7", DstIP: "203.0.113.20", DstPort: 53},
		{SrcIP: "10.0.0.1", DstIP: "198.51.100.1", DstPort: 22},
	}

	fmt.Printf("%-14s %-20s %-9s %-24s %s\n", "src", "dst", "verdict", "translated", "chain latency")
	for _, pkt := range packets {
		verdict, translated, latency, err := processPacket(p, pkt)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-20s %-9s %-24s %v\n",
			pkt.SrcIP, fmt.Sprintf("%s:%d", pkt.DstIP, pkt.DstPort), verdict, translated, latency)
	}
	return nil
}

// processPacket runs the firewall, and on allow, the NAT.
func processPacket(p *horse.Platform, pkt packet) (verdict, translated string, latency horse.Duration, err error) {
	fwPayload, err := json.Marshal(horse.FirewallRequest{SrcIP: pkt.SrcIP, DstPort: pkt.DstPort})
	if err != nil {
		return "", "", 0, err
	}
	fwInv, err := p.Trigger("firewall", horse.ModeHorse, fwPayload)
	if err != nil {
		return "", "", 0, err
	}
	latency = fwInv.Total()

	var decision horse.FirewallDecision
	if err := json.Unmarshal(fwInv.Output, &decision); err != nil {
		return "", "", 0, err
	}
	if !decision.Allow {
		return "DROP", "-", latency, nil
	}

	natPayload, err := json.Marshal(horse.NATPacket{DstIP: pkt.DstIP, DstPort: pkt.DstPort})
	if err != nil {
		return "", "", 0, err
	}
	natInv, err := p.Trigger("nat", horse.ModeHorse, natPayload)
	if err != nil {
		return "", "", 0, err
	}
	latency += natInv.Total()

	var result horse.NATResult
	if err := json.Unmarshal(natInv.Output, &result); err != nil {
		return "", "", 0, err
	}
	translated = fmt.Sprintf("%s:%d", result.DstIP, result.DstPort)
	if !result.Translated {
		translated += " (passthrough)"
	}
	return "ALLOW", translated, latency, nil
}
