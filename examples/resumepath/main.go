// Resumepath: drive the hypervisor directly and print the step-by-step
// cost breakdown of a sandbox resume under the four policies of the
// paper's Figure 3 — the vanilla path, the two ablations (P²SM only,
// coalescing only), and the full HORSE fast path.
//
//	go run ./examples/resumepath [-vcpus 36]
package main

import (
	"flag"
	"fmt"
	"log"

	horse "github.com/horse-faas/horse"
)

func main() {
	vcpus := flag.Int("vcpus", 36, "vCPUs of the sandbox")
	flag.Parse()
	if err := run(*vcpus); err != nil {
		log.Fatal(err)
	}
}

func run(vcpus int) error {
	fmt.Printf("Resume of a %d-vCPU uLL sandbox, step by step\n\n", vcpus)
	var vanillaTotal horse.Duration
	for _, policy := range []horse.Policy{
		horse.PolicyVanilla, horse.PolicyCoal, horse.PolicyPPSM, horse.PolicyHorse,
	} {
		report, err := resumeUnder(policy, vcpus)
		if err != nil {
			return err
		}
		fmt.Printf("policy %-6s total %-10v", report.Policy, report.Total)
		if policy == horse.PolicyVanilla {
			vanillaTotal = report.Total
		} else {
			saving := 1 - float64(report.Total)/float64(vanillaTotal)
			fmt.Printf(" (%.1f%% faster than vanilla)", 100*saving)
		}
		fmt.Println()
		for _, step := range report.Steps {
			fmt.Printf("    %-16s %v\n", step.Label, step.Cost)
		}
		fmt.Println()
	}
	fmt.Println("The two operations HORSE attacks are 'merge' (step ④, the per-vCPU")
	fmt.Println("sorted merge) and 'load' (step ⑤, the per-vCPU locked load update);")
	fmt.Println("'psm-merge' and 'coalesce' are their O(1) replacements.")
	return nil
}

// resumeUnder pauses and resumes a fresh sandbox under the policy.
func resumeUnder(policy horse.Policy, vcpus int) (horse.ResumeReport, error) {
	h, err := horse.NewHypervisor(horse.HypervisorOptions{})
	if err != nil {
		return horse.ResumeReport{}, err
	}
	engine := horse.NewResumeEngine(h)
	sb, err := h.CreateSandbox(horse.SandboxConfig{VCPUs: vcpus, MemoryMB: 512, ULL: true})
	if err != nil {
		return horse.ResumeReport{}, err
	}
	if _, err := engine.Pause(sb, policy); err != nil {
		return horse.ResumeReport{}, err
	}
	return engine.Resume(sb, policy)
}
