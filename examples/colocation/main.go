// Colocation: the paper's §5.4 experiment as a runnable example. An
// Azure-style trace of long-running thumbnail invocations shares a server
// with ten uLL sandbox resumes per second; the example sweeps the uLL
// sandbox size and reports how the thumbnails' tail latency responds
// under the vanilla path versus HORSE.
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	horse "github.com/horse-faas/horse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Thumbnail latency while colocated with 10 uLL resumes/second")
	fmt.Println("(identical arrivals and service times under both policies)")
	fmt.Println()
	fmt.Printf("%-10s %-14s %-14s %-14s %-12s %s\n",
		"uLL vCPUs", "p99 vanil", "p99 horse", "p99 delta", "inflation", "preemptions")

	for _, vcpus := range []int{1, 8, 16, 36} {
		cmp, err := horse.RunColocation(horse.ColocationConfig{
			ULLVCPUs: vcpus,
			Seed:     7,
		})
		if err != nil {
			return err
		}
		delta := cmp.Horse.Latency.P99 - cmp.Vanilla.Latency.P99
		fmt.Printf("%-10d %-14v %-14v %-14v %-11.5f%% %d\n",
			vcpus, cmp.Vanilla.Latency.P99, cmp.Horse.Latency.P99,
			delta, cmp.P99InflationPct(), cmp.Horse.Preemptions)
	}

	fmt.Println()
	fmt.Println("Paper §5.4: mean and p95 latencies are unchanged; the 99th")
	fmt.Println("percentile pays up to ≈30µs (0.00107%) at 36 uLL vCPUs — the")
	fmt.Println("price of a P²SM merge-thread burst preempting one function.")
	return nil
}
